// Ledger state: balances, nonces, the on-chain audit log, and per-contract
// key-value stores.
//
// Two layers share one mutation interface (LedgerView):
//  - LedgerState is the committed, materialized state (a plain value type);
//  - LedgerStateOverlay is a copy-on-write delta over a base view, built via
//    the named factories reader()/writer()/nested(). Block assembly and
//    validation trial-apply transactions on an overlay and commit (or
//    discard) only the touched accounts/keys, so the per-block cost is
//    proportional to the block, not to the world. Contract-call atomicity
//    uses a nested overlay the same way.
//
// State commitment is incremental (DESIGN.md §"State commitment"): the
// account map is Merkleized (crypto::MerkleMap), the audit log carries a
// running chain hash, and each contract store an additive multiset digest,
// so commitment() costs O(touched · log n) on an overlay instead of
// re-hashing the world. full_rehash_commitment() recomputes everything from
// scratch as a differential-testing oracle.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "crypto/merkle_map.h"
#include "crypto/set_hash.h"
#include "crypto/sha256.h"
#include "ledger/transaction.h"

namespace mv::ledger {

class ContractRegistry;

/// Audit record as stored on-chain (body + provenance).
struct StoredAuditRecord {
  crypto::Address collector;
  AuditRecordBody body;
  Tick height = 0;
};

/// Per-contract ordered KV store. Ordered so commitments are canonical.
using ContractStore = std::map<std::string, Bytes>;

/// Commitment to a full ledger state: one root digest plus the per-section
/// digests it is combined from. Returned by LedgerView::commitment() on the
/// materialized state and on overlays at any nesting depth; block headers
/// carry `root`.
struct StateCommitment {
  crypto::Digest root{};           ///< combined commitment (block header field)
  crypto::Digest accounts_root{};  ///< MerkleMap root over account leaves
  std::uint64_t account_count = 0;
  crypto::Digest audit_digest{};   ///< running hash over the audit log
  std::uint64_t audit_count = 0;
  crypto::Digest stores_digest{};  ///< combined per-contract-store digests
  std::uint64_t burned_fees = 0;

  [[nodiscard]] bool operator==(const StateCommitment&) const = default;
};

/// Recombine a commitment's section digests into its root (the
/// "mv.state.v2" layout, DESIGN.md §"State commitment"). Light clients use
/// this to check a served section breakdown against a header's state_root.
[[nodiscard]] crypto::Digest combine_commitment_root(const StateCommitment& c);

/// Digest of one account leaf as committed in the accounts MerkleMap:
/// sha256(u8(has_balance) || u64(balance) || u64(nonce)). A leaf exists iff
/// the account has a balance entry or a nonzero nonce. Exposed so account
/// proofs can be verified without a LedgerState.
[[nodiscard]] crypto::Digest account_leaf_digest(bool has_balance,
                                                 std::uint64_t balance,
                                                 std::uint64_t nonce);

/// Inverse of one committed block's delta, captured *before* the commit
/// (LedgerStateOverlay::capture_undo). Blockchain keeps a bounded ring of
/// these so recent historical states can be reconstructed for snapshot
/// export and stale-height account proofs — O(touched) to capture, O(sum of
/// touched) to roll back, instead of a full per-height state copy.
struct StateUndo {
  /// Prior balance entries for every balance the block wrote
  /// (nullopt = the account had no balance entry).
  std::map<crypto::Address, std::optional<std::uint64_t>> balances;
  /// Prior nonces for every nonce the block wrote (0 and "absent" are
  /// commitment-equivalent, so a plain value suffices).
  std::map<crypto::Address, std::uint64_t> nonces;
  struct StoreUndo {
    bool existed = true;  ///< store was materialized before the block
    /// Prior values for every key the block wrote (nullopt = absent).
    std::map<std::string, std::optional<Bytes>> entries;
  };
  std::map<std::string, StoreUndo> stores;
  std::size_t audit_count = 0;        ///< audit log length before the block
  crypto::Digest audit_digest{};      ///< running chain hash before the block
  std::uint64_t burned_delta = 0;     ///< fees the block burned
};

/// A view delta flattened for commitment computation: the overlay stack folds
/// itself into one of these and hands it to the materialized base. Internal
/// plumbing for commitment_with(); use LedgerView::commitment() instead.
struct CommitmentDelta {
  std::map<crypto::Address, std::uint64_t> balances;
  std::map<crypto::Address, std::uint64_t> nonces;
  std::vector<const StoredAuditRecord*> audit;  ///< appended, oldest first
  /// contract -> key -> new value (pointer into an overlay; nullopt* = erase)
  std::map<std::string, std::map<std::string, const std::optional<Bytes>*>> stores;
  std::uint64_t burned = 0;
};

/// Mutation/read interface shared by the committed state and overlays.
/// Transactions and contracts touch the ledger only through these
/// primitives, so the same apply() runs against either layer.
class LedgerView {
 public:
  virtual ~LedgerView() = default;

  // ---- accounts ----
  /// Balance entry, or nullopt when the account was never credited. The
  /// distinction matters: debit refuses unknown accounts, and a zero entry
  /// is part of the state commitment.
  [[nodiscard]] virtual std::optional<std::uint64_t> find_balance(
      crypto::Address a) const = 0;
  [[nodiscard]] std::uint64_t balance(crypto::Address a) const {
    return find_balance(a).value_or(0);
  }
  [[nodiscard]] bool has_account(crypto::Address a) const {
    return find_balance(a).has_value();
  }
  [[nodiscard]] virtual std::uint64_t nonce(crypto::Address a) const = 0;
  virtual void set_balance(crypto::Address a, std::uint64_t value) = 0;
  virtual void set_nonce(crypto::Address a, std::uint64_t value) = 0;

  // ---- fees / audit ----
  [[nodiscard]] virtual std::uint64_t burned_fees() const = 0;
  virtual void add_burned_fees(std::uint64_t amount) = 0;
  virtual void append_audit(StoredAuditRecord record) = 0;

  // ---- contract stores ----
  [[nodiscard]] virtual const Bytes* store_get(const std::string& contract,
                                               const std::string& key) const = 0;
  virtual void store_put(const std::string& contract, const std::string& key,
                         Bytes value) = 0;
  virtual void store_erase(const std::string& contract,
                           const std::string& key) = 0;
  [[nodiscard]] virtual std::vector<std::string> store_keys_with_prefix(
      const std::string& contract, const std::string& prefix) const = 0;

  // ---- state commitment ----
  /// Commitment to this view's full state (root + per-section digests).
  /// O(touched · log n) on an overlay — the base's cached Merkle tree and
  /// section digests are combined with the delta without materializing —
  /// and valid at any overlay nesting depth.
  [[nodiscard]] StateCommitment commitment() const {
    return commitment_with(CommitmentDelta{});
  }
  /// Internal: commitment of this view's state with `delta` stacked on top.
  /// Overlays fold their own delta into `delta` and recurse into their base.
  /// Public only so overlays can recurse through any LedgerView base.
  [[nodiscard]] virtual StateCommitment commitment_with(
      const CommitmentDelta& delta) const = 0;

  // ---- conveniences built on the primitives ----
  void credit(crypto::Address a, std::uint64_t amount);
  /// Debit; fails if the balance is insufficient (or the account is unknown).
  [[nodiscard]] Status debit(crypto::Address a, std::uint64_t amount);

  /// Validate and apply one transaction at the given height.
  /// Checks: signature, nonce equality, fee affordability, kind-specific body.
  /// Atomic: any failure leaves the view exactly as it was (contract calls
  /// run in a nested overlay that is committed only on success).
  /// `signature_preverified` skips the in-line signature check; pass true
  /// only when signature_valid() was already observed true for `tx` (the
  /// parallel block engine verifies signatures in a concurrent pre-pass).
  [[nodiscard]] Status apply(const Transaction& tx,
                             const ContractRegistry& contracts, Tick height,
                             bool signature_preverified = false);
};

/// One account's full content, used to bulk-load the account section on
/// snapshot install (LedgerState::load_accounts).
struct AccountSeed {
  crypto::Address addr;
  std::optional<std::uint64_t> balance;  ///< engaged = balance entry exists
  std::uint64_t nonce = 0;
};

class LedgerState final : public LedgerView {
 public:
  // ---- accounts ----
  [[nodiscard]] std::optional<std::uint64_t> find_balance(
      crypto::Address a) const override;
  [[nodiscard]] std::uint64_t nonce(crypto::Address a) const override;
  void set_balance(crypto::Address a, std::uint64_t value) override;
  void set_nonce(crypto::Address a, std::uint64_t value) override;

  /// Snapshot-install fast path: replace the whole account section from
  /// entries in strictly ascending address order. The balance/nonce maps are
  /// range-constructed (O(n) on sorted input) and the accounts Merkle tree
  /// is bulk-built from sorted leaves (MerkleMap::from_sorted_leaves) —
  /// one leaf hash per account, no per-key descents — instead of n
  /// set_balance/set_nonce round trips through refresh_account_leaf. Every
  /// entry must carry a leaf (a balance entry or nonzero nonce); order and
  /// leaf presence are the caller's contract (the strict snapshot decoder
  /// enforces both before calling).
  void load_accounts(const std::vector<AccountSeed>& sorted);

  // ---- audit log (§II-D) ----
  [[nodiscard]] const std::vector<StoredAuditRecord>& audit_log() const {
    return audit_log_;
  }
  void append_audit(StoredAuditRecord record) override;

  // ---- contract stores ----
  [[nodiscard]] const ContractStore* find_store(const std::string& contract) const;
  [[nodiscard]] const Bytes* store_get(const std::string& contract,
                                       const std::string& key) const override;
  void store_put(const std::string& contract, const std::string& key,
                 Bytes value) override;
  void store_erase(const std::string& contract, const std::string& key) override;
  /// Create `contract`'s (empty) store if missing, mirroring store_erase's
  /// side effect. The snapshot decoder uses this to rebuild empty stores,
  /// which the stores commitment covers (contract count + name).
  void materialize_store(const std::string& contract);
  [[nodiscard]] std::vector<std::string> store_keys_with_prefix(
      const std::string& contract, const std::string& prefix) const override;

  // ---- state commitment ----
  [[nodiscard]] StateCommitment commitment_with(
      const CommitmentDelta& delta) const override;
  /// Oracle: recompute the commitment from the raw maps with no incremental
  /// caches (independent account-tree recursion, audit chain refold, store
  /// digests from scratch). Differential tests assert it equals commitment().
  [[nodiscard]] StateCommitment full_rehash_commitment() const;
  [[nodiscard]] crypto::Digest full_rehash_root() const {
    return full_rehash_commitment().root;
  }

  [[nodiscard]] std::uint64_t burned_fees() const override { return burned_fees_; }
  void add_burned_fees(std::uint64_t amount) override { burned_fees_ += amount; }
  [[nodiscard]] std::size_t account_count() const { return balances_.size(); }

  // ---- raw section access (snapshot export / undo capture) ----
  [[nodiscard]] const std::map<crypto::Address, std::uint64_t>& balances() const {
    return balances_;
  }
  [[nodiscard]] const std::map<crypto::Address, std::uint64_t>& nonces() const {
    return nonces_;
  }
  [[nodiscard]] const std::map<std::string, ContractStore>& stores() const {
    return contracts_;
  }
  /// Running audit chain hash (the commitment's audit section, cached).
  [[nodiscard]] const crypto::Digest& audit_digest() const { return audit_digest_; }

  /// Roll back one committed block's delta (see StateUndo). The undo must
  /// have been captured against exactly this state's pre-block version and
  /// undos must be applied newest-first; anything else corrupts the state.
  void apply_undo(const StateUndo& undo);

  /// Snapshot-export fast path: a copy carrying the raw content sections
  /// (balances, nonces, audit log, stores, burned fees, cached section
  /// digests) but an EMPTY accounts Merkle tree — cloning the tree is the
  /// dominant cost of a full copy, and the exporter takes the manifest
  /// commitment from the chain's retention ring instead. apply_undo works on
  /// the clone (leaf refreshes land in a small scratch tree), but any
  /// commitment-bearing API touching the accounts tree returns garbage by
  /// construction: the clone must stay local to the export path.
  [[nodiscard]] LedgerState content_clone() const;

  /// Merkle inclusion proof for `a` against the current accounts_root (a
  /// non-membership proof when the account has no leaf). Pair with
  /// commitment() for the section digests a verifier recombines.
  [[nodiscard]] crypto::MerkleMapProof prove_account(crypto::Address a) const {
    return accounts_.prove(a.value);
  }

 private:
  /// Re-derive the Merkle leaf for `a` from balances_/nonces_ (absent when
  /// the account has neither a balance entry nor a nonzero nonce).
  void refresh_account_leaf(crypto::Address a);

  /// Incrementally maintained digest of one contract store.
  struct StoreDigest {
    crypto::SetHash sum;       ///< multiset hash over (key, value) entries
    std::uint64_t count = 0;   ///< live entries
  };

  std::map<crypto::Address, std::uint64_t> balances_;
  std::map<crypto::Address, std::uint64_t> nonces_;
  std::vector<StoredAuditRecord> audit_log_;
  std::map<std::string, ContractStore> contracts_;
  std::uint64_t burned_fees_ = 0;

  // Maintained commitment sections (see DESIGN.md §"State commitment").
  crypto::MerkleMap accounts_;                      ///< addr -> account leaf
  crypto::Digest audit_digest_{};                   ///< running chain hash
  std::map<std::string, StoreDigest> store_digests_;  ///< mirrors contracts_
};

/// Copy-on-write delta over a base view. Reads fall through to the base;
/// writes land in the overlay. commit() folds the delta into the base in
/// O(touched); discarding the overlay (destruction) costs the same.
///
/// Construct via the named factories — the intent is part of the call site:
///   auto scratch = LedgerStateOverlay::reader(base);   // no commit right
///   auto scratch = LedgerStateOverlay::writer(base);   // commit() folds in
///   auto scratch = LedgerStateOverlay::nested(parent); // sub-tx atomicity
///
/// Single-use: after commit() the overlay is empty and should be dropped.
class LedgerStateOverlay final : public LedgerView {
 public:
  /// Read-only base: trial application without the right to commit
  /// (block validation on a const chain). commit() is a hard failure
  /// (logged abort) in every build type — it would discard the delta.
  [[nodiscard]] static LedgerStateOverlay reader(const LedgerView& base) {
    return LedgerStateOverlay(&base, nullptr);
  }
  /// Writable base: commit() folds the delta into `base`.
  [[nodiscard]] static LedgerStateOverlay writer(LedgerView& base) {
    return LedgerStateOverlay(&base, &base);
  }
  /// Nested overlay over another overlay (contract-call atomicity). Same
  /// mechanics as writer(); the name keeps sub-transaction call sites honest.
  [[nodiscard]] static LedgerStateOverlay nested(LedgerView& parent) {
    return LedgerStateOverlay(&parent, &parent);
  }

  [[nodiscard]] std::optional<std::uint64_t> find_balance(
      crypto::Address a) const override;
  [[nodiscard]] std::uint64_t nonce(crypto::Address a) const override;
  void set_balance(crypto::Address a, std::uint64_t value) override;
  void set_nonce(crypto::Address a, std::uint64_t value) override;

  [[nodiscard]] std::uint64_t burned_fees() const override;
  void add_burned_fees(std::uint64_t amount) override { burned_delta_ += amount; }
  void append_audit(StoredAuditRecord record) override;

  [[nodiscard]] const Bytes* store_get(const std::string& contract,
                                       const std::string& key) const override;
  void store_put(const std::string& contract, const std::string& key,
                 Bytes value) override;
  void store_erase(const std::string& contract, const std::string& key) override;
  [[nodiscard]] std::vector<std::string> store_keys_with_prefix(
      const std::string& contract, const std::string& prefix) const override;

  /// Folds this overlay's delta into `delta` (the layers stacked above it)
  /// and recurses into the base, so the commitment works at any depth.
  [[nodiscard]] StateCommitment commitment_with(
      const CommitmentDelta& delta) const override;

  /// Fold the delta into the (writable) base. O(touched entries).
  void commit();

  /// Capture the inverse of this overlay's delta against `base`, which must
  /// be the materialized state this overlay was constructed over. Call
  /// *before* commit(); applying the result to the post-commit state
  /// restores `base` exactly (LedgerState::apply_undo). O(touched).
  [[nodiscard]] StateUndo capture_undo(const LedgerState& base) const;

  /// Number of accounts/keys recorded in the delta (diagnostics).
  [[nodiscard]] std::size_t touched() const;

 private:
  LedgerStateOverlay(const LedgerView* base, LedgerView* writable)
      : base_(base), writable_(writable) {}

  const LedgerView* base_ = nullptr;  ///< read fall-through
  LedgerView* writable_ = nullptr;    ///< commit target (null = read-only)

  std::map<crypto::Address, std::uint64_t> balances_;
  std::map<crypto::Address, std::uint64_t> nonces_;
  std::vector<StoredAuditRecord> audit_appended_;
  /// nullopt marks a deletion (tombstone).
  std::map<std::string, std::map<std::string, std::optional<Bytes>>> stores_;
  std::uint64_t burned_delta_ = 0;
};

/// Execution context handed to contracts. Contracts touch the ledger only
/// through this interface; their own store is pre-resolved.
class CallContext {
 public:
  CallContext(LedgerView& state, std::string contract_name,
              crypto::Address caller, Tick height)
      : state_(state),
        contract_name_(std::move(contract_name)),
        caller_(caller),
        height_(height) {}

  [[nodiscard]] crypto::Address caller() const { return caller_; }
  [[nodiscard]] Tick height() const { return height_; }

  // KV on the contract's own store.
  [[nodiscard]] const Bytes* get(const std::string& key) const;
  void put(const std::string& key, Bytes value);
  void erase(const std::string& key);
  /// Iterate keys with a given prefix (ordered).
  [[nodiscard]] std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  // Funds held by accounts (escrow flows in the NFT market).
  [[nodiscard]] std::uint64_t balance(crypto::Address a) const { return state_.balance(a); }
  [[nodiscard]] Status transfer(crypto::Address from, crypto::Address to,
                                std::uint64_t amount);
  /// Remove funds from circulation on this ledger (cross-shard lock). Fails
  /// exactly like a transfer when `from` cannot cover `amount`. Conservation
  /// shifts from per-ledger to cross-ledger: the caller must account for the
  /// burned amount elsewhere (ledger/shard.h tracks it as locked value).
  [[nodiscard]] Status burn(crypto::Address from, std::uint64_t amount);
  /// Create funds on this ledger (cross-shard mint against a proven receipt).
  /// The inverse of burn(); only contracts mediating an audited cross-ledger
  /// flow should call it.
  void mint(crypto::Address to, std::uint64_t amount);

 private:
  LedgerView& state_;
  std::string contract_name_;
  crypto::Address caller_;
  Tick height_;
};

/// Contract logic. Stateless — all persistent data lives in the LedgerState
/// store so that state copies stay consistent.
class Contract {
 public:
  virtual ~Contract() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual Status call(CallContext& ctx, const std::string& method,
                                    const Bytes& args) const = 0;
};

class ContractRegistry {
 public:
  void install(std::shared_ptr<const Contract> contract);
  [[nodiscard]] const Contract* find(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return contracts_.size(); }

 private:
  std::map<std::string, std::shared_ptr<const Contract>> contracts_;
};

}  // namespace mv::ledger
