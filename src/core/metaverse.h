// Metaverse: the paper's modular framework, assembled (Figure 3).
//
// One object wires every substrate into the architecture of §IV-C:
//  - decision-making  → FederatedDao (module committees + global escalation)
//  - resources/trust  → ReputationSystem, misinformation defences
//  - privacy          → per-user PrivacyPipeline with recommended policies,
//                       cloud releases mirrored as on-ledger audit records
//  - regulation       → PolicyEngine with per-region regulation modules,
//                       hot-swapped through governance decisions
//  - moderation       → ModerationEngine; upheld verdicts feed reputation
//  - economy          → NFT + DAO contracts hosted on a BFT-replicated ledger
//  - world            → avatars, privacy bubbles, secondary avatars
// plus the Ethical-Hierarchy audit over the live configuration.
#pragma once

#include <memory>
#include <set>
#include <unordered_map>

#include "common/event_bus.h"
#include "core/ethics.h"
#include "dao/contract.h"
#include "dao/federated.h"
#include "ledger/audit.h"
#include "ledger/consensus.h"
#include "moderation/engine.h"
#include "nft/contract.h"
#include "nft/market.h"
#include "policy/engine.h"
#include "privacy/pipeline.h"
#include "reputation/reputation.h"
#include "world/world.h"

namespace mv::core {

struct MetaverseConfig {
  std::uint64_t seed = 42;
  std::size_t validators = 4;
  std::size_t max_txs_per_block = 256;
  /// Privacy epoch length: every channel's differential-privacy budget
  /// resets each epoch (0 = never).
  Tick privacy_epoch = 0;
  /// §II-D IRB model: "all the players involved in creating and managing the
  /// metaverse should adopt some form of institutional review board". When
  /// set, a sensor channel's declared purpose must be governance-approved
  /// before any cloud release with that purpose goes through.
  bool require_irb_approval = false;
  dao::FederatedConfig governance;
  reputation::ReputationConfig reputation;
  moderation::EngineConfig moderation;
  nft::AdmissionPolicy market_admission = nft::AdmissionPolicy::kReputationGated;
  bool safety_interventions_enabled = true;
  bool positive_incentives_enabled = true;
  double space_width = 100.0;
  double space_height = 100.0;
  std::uint64_t genesis_grant = 1'000'000;  ///< starting balance per user
};

/// Everything the platform knows about a registered user.
struct UserHandle {
  std::uint64_t user_id = 0;
  AccountId account;          ///< governance / reputation identity
  AvatarId avatar;            ///< primary avatar
  std::string region;         ///< routes regulation
  crypto::Address address;    ///< on-ledger identity
};

class Metaverse {
 public:
  explicit Metaverse(MetaverseConfig config);

  // ---- user lifecycle -------------------------------------------------
  /// Registers a user end to end: wallet + genesis grant, DAO enrollment,
  /// reputation account, primary avatar, and a privacy pipeline preloaded
  /// with the recommended per-sensor policies.
  UserHandle register_user(const std::string& region);
  [[nodiscard]] const UserHandle* user(std::uint64_t user_id) const;
  [[nodiscard]] std::size_t user_count() const { return users_.size(); }
  [[nodiscard]] const crypto::Wallet& wallet(std::uint64_t user_id) const;
  /// Address the user's XR device files audit records under.
  [[nodiscard]] crypto::Address device_address(std::uint64_t user_id) const;
  /// Platform sanction identity (applies reputation penalties on upheld
  /// moderation verdicts).
  static constexpr AccountId kSystemAccount{0};

  // ---- subsystem access ------------------------------------------------
  [[nodiscard]] world::World& world() { return world_; }
  [[nodiscard]] dao::FederatedDao& governance() { return governance_; }
  [[nodiscard]] reputation::ReputationSystem& reputation() { return reputation_; }
  [[nodiscard]] policy::PolicyEngine& policy() { return policy_; }
  [[nodiscard]] moderation::ModerationEngine& moderation() { return moderation_; }
  [[nodiscard]] privacy::PrivacyPipeline& pipeline(std::uint64_t user_id);
  [[nodiscard]] ledger::ValidatorCommittee& committee() { return *committee_; }
  [[nodiscard]] const ledger::Blockchain& chain() const { return committee_->chain(0); }
  [[nodiscard]] SimClock& clock() { return clock_; }
  [[nodiscard]] EventBus& bus() { return bus_; }

  // ---- cross-module flows ----------------------------------------------
  /// Push a sensor reading through the user's privacy pipeline; cloud
  /// releases are filed as on-ledger audit records (§II-D).
  std::optional<privacy::SensorReading> ingest(std::uint64_t user_id,
                                               const privacy::SensorReading& reading);

  /// Consent change with an on-ledger receipt (§II-D transparency: privacy
  /// practices "should be transparent and clear to all members").
  void set_consent(std::uint64_t user_id, privacy::SensorType type, bool consent);

  /// IRB workflow (§II-D): open a governance proposal to approve a data
  /// purpose; when it passes via finalize_governance, releases resume.
  [[nodiscard]] Result<ProposalId> propose_purpose_approval(std::uint64_t author,
                                                            std::string purpose);
  [[nodiscard]] bool purpose_approved(const std::string& purpose) const {
    return !config_.require_irb_approval || approved_purposes_.contains(purpose);
  }
  [[nodiscard]] std::uint64_t irb_blocked() const { return irb_blocked_; }

  /// File a misbehaviour report; moderation resolves it asynchronously and
  /// upheld verdicts feed the reputation system (applied in tick()).
  void report_misbehaviour(std::uint64_t reporter, std::uint64_t offender,
                           moderation::ReportKind kind);

  /// Governance-gated regulation swap (§III-E): opens a global proposal;
  /// when finalize_governance() sees it pass, the region's module swaps.
  [[nodiscard]] Result<ProposalId> propose_policy_swap(std::uint64_t author,
                                                       std::string region,
                                                       policy::ModulePtr module);
  [[nodiscard]] Result<dao::FederatedOutcome> finalize_governance(ProposalId id);

  /// Audit a data-flow event under the *user's* region's regulation module
  /// (the §III-E routing: rules follow where the subject is).
  [[nodiscard]] std::vector<policy::Violation> audit_flow(
      std::uint64_t user_id, const policy::DataFlowEvent& event);

  /// Submit a signed transaction to the validator committee.
  void submit_tx(const ledger::Transaction& tx) { committee_->submit(tx); }
  /// Drive one consensus round.
  bool run_consensus_round() { return committee_->run_round(); }

  /// Advance platform time: steps moderation, applies fresh verdicts to
  /// reputation, decays reputation each `decay_interval` ticks.
  void tick();

  // ---- the paper's audit ------------------------------------------------
  [[nodiscard]] EthicsReport ethics_audit() const;

  /// One-look platform health across every module (telemetry surface).
  struct Snapshot {
    Tick now = 0;
    std::size_t users = 0;
    std::int64_t chain_height = 0;
    std::uint64_t committed_txs = 0;
    std::size_t audit_records = 0;
    std::size_t governance_modules = 0;
    std::uint64_t ballots_cast = 0;
    std::size_t moderation_backlog = 0;
    std::uint64_t moderation_resolved = 0;
    double avg_reputation = 0.0;
    double policy_compliance = 1.0;
    double ethics_score = 1.0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] const MetaverseConfig& config() const { return config_; }

 private:
  struct UserRecord {
    UserHandle handle;
    std::unique_ptr<crypto::Wallet> wallet;
    /// Device identity: audit records are filed by the XR device, separately
    /// from the user's spending wallet (keeps nonce streams independent).
    std::unique_ptr<crypto::Wallet> device_wallet;
    std::unique_ptr<privacy::PrivacyPipeline> pipeline;
    std::unique_ptr<ledger::AuditClient> audit_client;
  };

  struct PendingSwap {
    std::string region;
    policy::ModulePtr module;
  };

  struct PendingPurpose {
    std::string purpose;
  };

  MetaverseConfig config_;
  Rng rng_;
  SimClock clock_;
  EventBus bus_;
  net::Network network_;
  std::shared_ptr<ledger::ContractRegistry> contracts_;
  std::unique_ptr<crypto::Wallet> faucet_;  ///< genesis treasury
  std::uint64_t faucet_nonce_ = 0;
  std::unique_ptr<ledger::ValidatorCommittee> committee_;
  world::World world_;
  SpaceId plaza_;
  dao::FederatedDao governance_;
  reputation::ReputationSystem reputation_;
  policy::PolicyEngine policy_;
  moderation::ModerationEngine moderation_;
  std::unordered_map<std::uint64_t, UserRecord> users_;
  std::unordered_map<AccountId, std::uint64_t> account_to_user_;
  std::unordered_map<ProposalId, PendingSwap> pending_swaps_;
  std::unordered_map<ProposalId, PendingPurpose> pending_purposes_;
  std::set<std::string> approved_purposes_;
  std::uint64_t irb_blocked_ = 0;
  std::uint64_t next_user_id_ = 1;
  std::uint64_t next_report_id_ = 1;
  std::size_t resolutions_seen_ = 0;
};

}  // namespace mv::core
