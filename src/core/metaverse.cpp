#include "core/metaverse.h"

namespace mv::core {

namespace {
constexpr std::uint64_t kFaucetMultiplier = 100'000;
}  // namespace

Metaverse::Metaverse(MetaverseConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      network_(clock_, Rng(config_.seed ^ 0x5eedbeef),
               net::LinkParams{.base_latency = 1.0, .jitter = 1.0, .drop_rate = 0.0}),
      contracts_(std::make_shared<ledger::ContractRegistry>()),
      world_(Rng(config_.seed ^ 0x0a11ce)),
      governance_(config_.governance, Rng(config_.seed ^ 0xda0da0)),
      reputation_(config_.reputation),
      moderation_(config_.moderation, Rng(config_.seed ^ 0x0de7a11)) {
  contracts_->install(std::make_shared<dao::DaoContract>(dao::DaoContractConfig{}));
  contracts_->install(std::make_shared<nft::NftContract>());

  faucet_ = std::make_unique<crypto::Wallet>(rng_);
  ledger::LedgerState genesis;
  genesis.credit(faucet_->address(),
                 config_.genesis_grant * kFaucetMultiplier);
  committee_ = std::make_unique<ledger::ValidatorCommittee>(
      network_, config_.validators, contracts_, genesis,
      config_.max_txs_per_block, rng_);

  plaza_ = world_.create_space(config_.space_width, config_.space_height);

  // NFT-gated land (§IV-A, the Decentraland LAND model): a gated space
  // admits the avatar whose owner's wallet holds the land token on chain.
  world_.set_access_oracle([this](std::uint64_t user, std::uint64_t token) {
    const auto it = users_.find(user);
    if (it == users_.end()) return false;
    const auto view = nft::NftContract::token(chain().state(), token);
    return view.ok() && view.value().owner == it->second.handle.address;
  });

  // The platform sanction identity: old and staked, so its reports carry
  // full credibility.
  (void)reputation_.register_account(kSystemAccount, clock_.now() - 1'000'000,
                                     /*stake=*/1'000.0);

  // Reports from credible members jump the moderation queue (§IV-C).
  moderation_.set_credibility_oracle([this](AccountId id) {
    return reputation_.credibility(id, clock_.now());
  });
}

UserHandle Metaverse::register_user(const std::string& region) {
  UserRecord record;
  record.wallet = std::make_unique<crypto::Wallet>(rng_);
  record.device_wallet = std::make_unique<crypto::Wallet>(rng_);
  record.audit_client =
      std::make_unique<ledger::AuditClient>(*record.device_wallet, rng_);

  UserHandle handle;
  handle.user_id = next_user_id_++;
  handle.account = AccountId(handle.user_id);
  handle.region = region;
  handle.address = record.wallet->address();
  handle.avatar = world_.spawn_primary(
      handle.user_id, plaza_,
      {rng_.uniform(0.0, config_.space_width),
       rng_.uniform(0.0, config_.space_height)});
  record.handle = handle;

  // Governance enrollment (§IV-C: every member involved in decision-making).
  dao::Member member;
  member.id = handle.account;
  member.tokens = 1;
  (void)governance_.enroll(member);

  // Reputation account with a small starter stake.
  (void)reputation_.register_account(handle.account, clock_.now(), 10.0);

  // Privacy pipeline preloaded with §II-D recommended policies and the
  // on-ledger audit hook.
  record.pipeline = std::make_unique<privacy::PrivacyPipeline>(
      Rng(config_.seed ^ (handle.user_id * 0x9e37)));
  for (const auto type :
       {privacy::SensorType::kGaze, privacy::SensorType::kHeadPose,
        privacy::SensorType::kHeartRate, privacy::SensorType::kSpatialMap,
        privacy::SensorType::kMicrophone}) {
    record.pipeline->set_policy(type, privacy::recommended_policy(type));
  }
  auto* audit_client = record.audit_client.get();
  const std::uint64_t uid = handle.user_id;
  record.pipeline->set_audit_hook(
      [this, audit_client, uid](const privacy::SensorReading& reading,
                                const std::string& pet_chain,
                                const std::string& purpose) {
        ledger::AuditRecordBody body;
        body.data_category = privacy::to_string(reading.type);
        body.purpose = purpose;
        body.subject = uid;
        body.pet_applied = pet_chain;
        committee_->submit(
            audit_client->record(chain().state(), std::move(body)));
      });

  // Genesis grant: a faucet transfer lands with the next consensus round.
  committee_->submit(ledger::make_transfer(*faucet_, faucet_nonce_++,
                                           handle.address,
                                           config_.genesis_grant, 0, rng_));

  const std::uint64_t user_id = handle.user_id;
  account_to_user_.emplace(handle.account, user_id);
  users_.emplace(user_id, std::move(record));
  return handle;
}

const UserHandle* Metaverse::user(std::uint64_t user_id) const {
  const auto it = users_.find(user_id);
  return it == users_.end() ? nullptr : &it->second.handle;
}

const crypto::Wallet& Metaverse::wallet(std::uint64_t user_id) const {
  return *users_.at(user_id).wallet;
}

crypto::Address Metaverse::device_address(std::uint64_t user_id) const {
  return users_.at(user_id).device_wallet->address();
}

privacy::PrivacyPipeline& Metaverse::pipeline(std::uint64_t user_id) {
  return *users_.at(user_id).pipeline;
}

std::optional<privacy::SensorReading> Metaverse::ingest(
    std::uint64_t user_id, const privacy::SensorReading& reading) {
  if (config_.require_irb_approval) {
    const auto* policy = pipeline(user_id).policy(reading.type);
    if (policy != nullptr && !purpose_approved(policy->purpose)) {
      ++irb_blocked_;
      return std::nullopt;
    }
  }
  return pipeline(user_id).process(reading);
}

Result<ProposalId> Metaverse::propose_purpose_approval(std::uint64_t author,
                                                       std::string purpose) {
  const UserHandle* handle = user(author);
  if (handle == nullptr) return make_error("core.no_such_user", "unknown user");
  auto id = governance_.propose(handle->account, ModuleId::invalid(),
                                "IRB: approve data purpose '" + purpose + "'",
                                clock_.now());
  if (!id.ok()) return id;
  pending_purposes_.emplace(id.value(), PendingPurpose{std::move(purpose)});
  return id;
}

void Metaverse::set_consent(std::uint64_t user_id, privacy::SensorType type,
                            bool consent) {
  const auto it = users_.find(user_id);
  if (it == users_.end()) return;
  it->second.pipeline->set_consent(type, consent);
  // Consent receipt: the change itself is an auditable processing event.
  ledger::AuditRecordBody receipt;
  receipt.data_category = privacy::to_string(type);
  receipt.purpose = consent ? "consent_granted" : "consent_withdrawn";
  receipt.subject = user_id;
  receipt.pet_applied = "n/a";
  committee_->submit(
      it->second.audit_client->record(chain().state(), std::move(receipt)));
}

void Metaverse::report_misbehaviour(std::uint64_t reporter,
                                    std::uint64_t offender,
                                    moderation::ReportKind kind) {
  const UserHandle* rep = user(reporter);
  const UserHandle* off = user(offender);
  if (rep == nullptr || off == nullptr) return;
  moderation::Report report;
  report.id = ReportId(next_report_id_++);
  report.reporter = rep->account;
  report.offender = off->account;
  report.kind = kind;
  report.filed_at = clock_.now();
  // Ground truth for the simulated classifier: reports are mostly genuine.
  report.is_violation = rng_.chance(0.85);
  moderation_.submit(std::move(report));
}

std::vector<policy::Violation> Metaverse::audit_flow(
    std::uint64_t user_id, const policy::DataFlowEvent& event) {
  const UserHandle* handle = user(user_id);
  if (handle == nullptr) return {};
  return policy_.audit(handle->region, event);
}

Result<ProposalId> Metaverse::propose_policy_swap(std::uint64_t author,
                                                  std::string region,
                                                  policy::ModulePtr module) {
  const UserHandle* handle = user(author);
  if (handle == nullptr) return make_error("core.no_such_user", "unknown user");
  auto id = governance_.propose(
      handle->account, ModuleId::invalid(),
      "swap regulation of '" + region + "' to " + module->name(), clock_.now());
  if (!id.ok()) return id;
  pending_swaps_.emplace(id.value(), PendingSwap{std::move(region), std::move(module)});
  return id;
}

Result<dao::FederatedOutcome> Metaverse::finalize_governance(ProposalId id) {
  auto outcome = governance_.finalize(id, clock_.now());
  if (!outcome.ok()) return outcome;
  const bool passed = outcome.value().status == dao::ProposalStatus::kPassed ||
                      outcome.value().status == dao::ProposalStatus::kExecuted;
  if (const auto it = pending_swaps_.find(id); it != pending_swaps_.end()) {
    if (passed) {
      // Code follows governance (§III-A): the decision changes the platform.
      policy_.set_region_module(it->second.region, it->second.module);
    }
    pending_swaps_.erase(it);
  }
  if (const auto it = pending_purposes_.find(id); it != pending_purposes_.end()) {
    if (passed) approved_purposes_.insert(it->second.purpose);
    pending_purposes_.erase(it);
  }
  return outcome;
}

void Metaverse::tick() {
  clock_.advance();
  const Tick now = clock_.now();
  moderation_.step(now);

  // Apply fresh moderation verdicts to reputation: upheld report → platform
  // sanction on the offender (§IV-C Human Effort: "report malicious users'
  // misbehaviour... while voting").
  const auto& resolutions = moderation_.resolutions();
  for (; resolutions_seen_ < resolutions.size(); ++resolutions_seen_) {
    const auto& r = resolutions[resolutions_seen_];
    bus_.publish(r);  // observers (examples, telemetry) may react
    if (r.verdict != moderation::Verdict::kUphold) continue;
    (void)reputation_.report(kSystemAccount, r.offender, 1.0, now);
  }

  if (now % 100 == 0) reputation_.decay_epoch();
  if (config_.privacy_epoch > 0 && now % config_.privacy_epoch == 0) {
    for (auto& [id, record] : users_) record.pipeline->reset_budgets();
  }
  network_.step();
}

Metaverse::Snapshot Metaverse::snapshot() const {
  Snapshot s;
  s.now = clock_.now();
  s.users = users_.size();
  s.chain_height = committee_->chain(0).height();
  s.committed_txs = committee_->stats().committed_txs;
  s.audit_records = committee_->chain(0).state().audit_log().size();
  s.governance_modules = governance_.module_count();
  s.ballots_cast = governance_.global().stats().ballots_cast;
  s.moderation_backlog = moderation_.backlog();
  s.moderation_resolved = moderation_.metrics().resolved;
  double rep_sum = 0.0;
  for (const auto& [id, record] : users_) {
    rep_sum += reputation_.score(record.handle.account);
  }
  s.avg_reputation = users_.empty() ? 0.0 : rep_sum / static_cast<double>(users_.size());
  s.policy_compliance = policy_.stats().compliance_rate();
  s.ethics_score = ethics_audit().overall_score();
  return s;
}

EthicsReport Metaverse::ethics_audit() const {
  EthicsReport report;
  const auto add = [&](EthicalLayer layer, std::string capability,
                       bool satisfied, std::string evidence) {
    report.checks.push_back(EthicalCheck{layer, std::move(capability), satisfied,
                                         std::move(evidence)});
  };

  // --- Human rights ---
  add(EthicalLayer::kHumanRights, "decentralized_governance",
      governance_.module_count() > 0,
      std::to_string(governance_.module_count()) + " governance modules");
  add(EthicalLayer::kHumanRights, "transparent_replicated_records",
      committee_ != nullptr && committee_->size() >= 4,
      std::to_string(committee_ ? committee_->size() : 0) + " validators (BFT needs >= 4)");
  add(EthicalLayer::kHumanRights, "privacy_by_default", user_count() > 0,
      "recommended PET policies installed per user at registration");
  add(EthicalLayer::kHumanRights, "local_regulation_adaptivity",
      policy_.region_count() > 0,
      std::to_string(policy_.region_count()) + " regions mapped to regulation modules");
  add(EthicalLayer::kHumanRights, "inclusive_access",
      config_.market_admission != nft::AdmissionPolicy::kInviteOnly,
      std::string("market admission: ") + nft::to_string(config_.market_admission));

  // --- Human effort ---
  add(EthicalLayer::kHumanEffort, "reputation_attached",
      reputation_.account_count() > user_count(),  // users + system account
      std::to_string(reputation_.account_count()) + " reputation accounts");
  add(EthicalLayer::kHumanEffort, "user_reporting_channel", true,
      std::string("moderation mode: ") + moderation::to_string(config_.moderation.mode));
  add(EthicalLayer::kHumanEffort, "stakeholder_voting",
      governance_.global().members().size() > 0,
      std::to_string(governance_.global().members().size()) + " enrolled voters");

  // --- Human experience ---
  add(EthicalLayer::kHumanExperience, "avatar_plurality", true,
      "secondary avatars and privacy bubbles supported by the world engine");
  add(EthicalLayer::kHumanExperience, "physical_safety_interventions",
      config_.safety_interventions_enabled, "config flag");
  add(EthicalLayer::kHumanExperience, "positive_behaviour_incentives",
      config_.positive_incentives_enabled, "config flag");

  return report;
}

}  // namespace mv::core
