// Portable governance packs (§III-C).
//
// "This modularity can enable the development of portable tools that can be
// adapted to different platforms and use cases." A GovernancePack captures
// the platform-independent part of a metaverse's governance configuration —
// which governance concerns (federated modules) exist and which regulation
// module each region runs — in a canonical wire format, so one platform's
// governance layout can be applied to another (or archived/audited).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/metaverse.h"

namespace mv::core {

struct GovernancePack {
  std::vector<std::string> governance_modules;  ///< federated concern names
  std::map<std::string, std::string> region_regulations;  ///< region → module name

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<GovernancePack> decode(const Bytes& bytes);

  friend bool operator==(const GovernancePack&, const GovernancePack&) = default;
};

/// Snapshot the portable governance layout of a platform.
[[nodiscard]] GovernancePack export_governance_pack(Metaverse& metaverse);

/// Apply a pack to a platform: create any missing governance concerns and
/// bind each region to the named regulation module. Unknown regulation names
/// fail the whole application (nothing is partially applied).
[[nodiscard]] Status apply_governance_pack(Metaverse& metaverse,
                                           const GovernancePack& pack);

/// The registry of portable regulation modules ("gdpr", "ccpa", "baseline",
/// and "+"-joined compositions such as "gdpr+ccpa").
[[nodiscard]] Result<policy::ModulePtr> regulation_by_name(const std::string& name);

}  // namespace mv::core
