#include "core/ethics.h"

namespace mv::core {

const char* to_string(EthicalLayer layer) {
  switch (layer) {
    case EthicalLayer::kHumanRights: return "human_rights";
    case EthicalLayer::kHumanEffort: return "human_effort";
    case EthicalLayer::kHumanExperience: return "human_experience";
  }
  return "?";
}

double EthicsReport::layer_score(EthicalLayer layer) const {
  std::size_t total = 0, satisfied = 0;
  for (const auto& check : checks) {
    if (check.layer != layer) continue;
    ++total;
    satisfied += check.satisfied;
  }
  return total ? static_cast<double>(satisfied) / static_cast<double>(total) : 1.0;
}

double EthicsReport::overall_score() const {
  if (checks.empty()) return 1.0;
  std::size_t satisfied = 0;
  for (const auto& check : checks) satisfied += check.satisfied;
  return static_cast<double>(satisfied) / static_cast<double>(checks.size());
}

std::vector<std::string> EthicsReport::missing(EthicalLayer layer) const {
  std::vector<std::string> out;
  for (const auto& check : checks) {
    if (check.layer == layer && !check.satisfied) out.push_back(check.capability);
  }
  return out;
}

bool EthicsReport::layer_supported(EthicalLayer layer, double threshold) const {
  // Pyramid semantics: every layer below must clear the threshold too.
  const auto order = {EthicalLayer::kHumanRights, EthicalLayer::kHumanEffort,
                      EthicalLayer::kHumanExperience};
  for (const EthicalLayer l : order) {
    if (layer_score(l) < threshold) return false;
    if (l == layer) return true;
  }
  return false;
}

}  // namespace mv::core
