// Ethical-Hierarchy-of-Needs audit (§IV-C, Figure 3).
//
// The paper aligns its modular architecture with the 'Ethical Hierarchy of
// Needs': Human Rights at the base, Human Effort above, Human Experience on
// top. The audit inspects a platform's *actual configuration* (which modules
// are installed and how) and scores each layer by the fraction of its
// capabilities the configuration provides, listing what is missing — an
// executable version of the paper's design checklist.
#pragma once

#include <string>
#include <vector>

namespace mv::core {

enum class EthicalLayer : std::uint8_t {
  kHumanRights,
  kHumanEffort,
  kHumanExperience,
};

[[nodiscard]] const char* to_string(EthicalLayer layer);

/// One capability the hierarchy expects, with the observed verdict.
struct EthicalCheck {
  EthicalLayer layer;
  std::string capability;  ///< e.g. "privacy_by_default"
  bool satisfied = false;
  std::string evidence;  ///< what was inspected
};

struct EthicsReport {
  std::vector<EthicalCheck> checks;

  [[nodiscard]] double layer_score(EthicalLayer layer) const;
  [[nodiscard]] double overall_score() const;
  [[nodiscard]] std::vector<std::string> missing(EthicalLayer layer) const;
  /// The hierarchy is a pyramid: a layer only counts as supported when every
  /// layer below it scores at least `threshold`.
  [[nodiscard]] bool layer_supported(EthicalLayer layer, double threshold = 0.75) const;
};

}  // namespace mv::core
