#include "core/portability.h"

namespace mv::core {

Bytes GovernancePack::encode() const {
  ByteWriter w;
  w.str("mvgovpack/1");  // format tag + version
  w.u32(static_cast<std::uint32_t>(governance_modules.size()));
  for (const auto& name : governance_modules) w.str(name);
  w.u32(static_cast<std::uint32_t>(region_regulations.size()));
  for (const auto& [region, regulation] : region_regulations) {
    w.str(region);
    w.str(regulation);
  }
  return w.take();
}

Result<GovernancePack> GovernancePack::decode(const Bytes& bytes) {
  ByteReader r(bytes);
  auto tag = r.str();
  if (!tag.ok()) return tag.error();
  if (tag.value() != "mvgovpack/1") {
    return make_error("pack.bad_format", "unknown pack format tag");
  }
  GovernancePack pack;
  auto module_count = r.u32();
  if (!module_count.ok()) return module_count.error();
  if (module_count.value() > r.remaining() / 4) {
    return make_error("pack.bad_count", "module count exceeds payload");
  }
  for (std::uint32_t i = 0; i < module_count.value(); ++i) {
    auto name = r.str();
    if (!name.ok()) return name.error();
    pack.governance_modules.push_back(name.value());
  }
  auto binding_count = r.u32();
  if (!binding_count.ok()) return binding_count.error();
  if (binding_count.value() > r.remaining() / 8) {
    return make_error("pack.bad_count", "binding count exceeds payload");
  }
  for (std::uint32_t i = 0; i < binding_count.value(); ++i) {
    auto region = r.str();
    if (!region.ok()) return region.error();
    auto regulation = r.str();
    if (!regulation.ok()) return regulation.error();
    pack.region_regulations.emplace(region.value(), regulation.value());
  }
  if (!r.exhausted()) {
    return make_error("pack.trailing_bytes", "unparsed trailing data");
  }
  return pack;
}

GovernancePack export_governance_pack(Metaverse& metaverse) {
  GovernancePack pack;
  auto& governance = metaverse.governance();
  for (std::size_t m = 0; m < governance.module_count(); ++m) {
    pack.governance_modules.push_back(governance.module_name(ModuleId(m)));
  }
  for (const auto& [region, regulation] : metaverse.policy().region_bindings()) {
    pack.region_regulations.emplace(region, regulation);
  }
  return pack;
}

Result<policy::ModulePtr> regulation_by_name(const std::string& name) {
  if (name == "gdpr") return policy::make_gdpr_module();
  if (name == "ccpa") return policy::make_ccpa_module();
  if (name == "baseline") return policy::make_baseline_module();
  // Compositions: "a+b" = union of the named modules' rules.
  const auto plus = name.find('+');
  if (plus != std::string::npos && plus > 0 && plus + 1 < name.size()) {
    auto left = regulation_by_name(name.substr(0, plus));
    if (!left.ok()) return left.error();
    auto right = regulation_by_name(name.substr(plus + 1));
    if (!right.ok()) return right.error();
    return policy::compose(left.value(), right.value(), name);
  }
  return make_error("pack.unknown_regulation", name);
}

Status apply_governance_pack(Metaverse& metaverse, const GovernancePack& pack) {
  // Resolve every regulation first so the application is all-or-nothing.
  std::vector<std::pair<std::string, policy::ModulePtr>> resolved;
  resolved.reserve(pack.region_regulations.size());
  for (const auto& [region, regulation] : pack.region_regulations) {
    auto module = regulation_by_name(regulation);
    if (!module.ok()) {
      return Status::fail(module.error().code, module.error().message);
    }
    resolved.emplace_back(region, module.value());
  }
  auto& governance = metaverse.governance();
  // Create any concern not already present (by name).
  for (const auto& wanted : pack.governance_modules) {
    bool exists = false;
    for (std::size_t m = 0; m < governance.module_count(); ++m) {
      if (governance.module_name(ModuleId(m)) == wanted) {
        exists = true;
        break;
      }
    }
    if (!exists) governance.create_module(wanted);
  }
  for (auto& [region, module] : resolved) {
    metaverse.policy().set_region_module(region, std::move(module));
  }
  return {};
}

}  // namespace mv::core
