#include "scenario/invariants.h"

#include <cstring>

#include "dao/contract.h"
#include "moderation/contract.h"
#include "nft/contract.h"

namespace mv::scenario {

namespace {

std::uint64_t dec_u64(const Bytes& b) {
  ByteReader r(b);
  auto v = r.u64();
  return v.ok() ? v.value() : 0;
}

std::int64_t dec_i64(const Bytes& b) {
  ByteReader r(b);
  auto v = r.i64();
  return v.ok() ? v.value() : 0;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

void check_conservation(const ledger::LedgerState& state,
                        const InvariantOptions& opts,
                        std::vector<std::string>& out) {
  std::uint64_t circulating = 0;
  for (const auto& [addr, balance] : state.balances()) circulating += balance;
  const std::uint64_t total = circulating + state.burned_fees();
  if (total != opts.total_supply) {
    out.push_back("conservation: balances(" + std::to_string(circulating) +
                  ") + burned(" + std::to_string(state.burned_fees()) +
                  ") != supply(" + std::to_string(opts.total_supply) + ")");
  }
}

void check_nft(const ledger::LedgerState& state, const InvariantOptions& opts,
               std::vector<std::string>& out) {
  const auto* store = state.find_store(opts.nft_contract);
  if (store == nullptr) return;  // no nft traffic yet
  std::uint64_t owners = 0;
  std::uint64_t listings = 0;
  for (const auto& [key, value] : *store) {
    if (starts_with(key, "token/") && ends_with(key, "/owner")) ++owners;
    if (starts_with(key, "listing/")) {
      ++listings;
      const std::string id = key.substr(std::strlen("listing/"));
      if (store->find("token/" + id + "/owner") == store->end()) {
        out.push_back("nft: listing for nonexistent token " + id);
      }
      if (dec_u64(value) == 0) {
        out.push_back("nft: zero-price listing for token " + id);
      }
    }
  }
  const std::uint64_t next = nft::NftContract::token_count(state);
  if (owners != next) {
    out.push_back("nft: owner records (" + std::to_string(owners) +
                  ") != next_token (" + std::to_string(next) + ")");
  }
  if (listings > owners) {
    out.push_back("nft: more listings than tokens");
  }
}

void check_dao(const ledger::LedgerState& state, const InvariantOptions& opts,
               std::vector<std::string>& out) {
  const auto* store = state.find_store(opts.dao_contract);
  if (store == nullptr) return;
  std::uint64_t members = 0;
  std::uint64_t proposals = 0;
  for (const auto& [key, value] : *store) {
    if (starts_with(key, "member/")) ++members;
    if (starts_with(key, "prop/") && ends_with(key, "/meta")) ++proposals;
    const std::size_t vote_at = key.find("/vote/");
    if (starts_with(key, "prop/") && vote_at != std::string::npos) {
      const std::string voter = key.substr(vote_at + std::strlen("/vote/"));
      if (store->find("member/" + voter) == store->end()) {
        out.push_back("dao: ballot from non-member " + voter + " on " + key);
      }
    }
  }
  const std::uint64_t member_count =
      dao::DaoContract::member_count(state, opts.dao_contract);
  if (member_count != members) {
    out.push_back("dao: member_count (" + std::to_string(member_count) +
                  ") != member records (" + std::to_string(members) + ")");
  }
  const std::uint64_t next_id =
      dao::DaoContract::proposal_count(state, opts.dao_contract);
  if (next_id != proposals) {
    out.push_back("dao: next_id (" + std::to_string(next_id) +
                  ") != proposal records (" + std::to_string(proposals) + ")");
  }
}

void check_reputation(const ledger::LedgerState& state,
                      const InvariantOptions& opts,
                      std::vector<std::string>& out) {
  const auto* store = state.find_store(opts.reputation_contract);
  if (store == nullptr) return;
  for (const auto& [key, value] : *store) {
    if (!starts_with(key, "score/")) continue;
    const std::int64_t score = dec_i64(value);
    if (score < opts.rep_min || score > opts.rep_max) {
      out.push_back("reputation: " + key + " = " + std::to_string(score) +
                    " outside [" + std::to_string(opts.rep_min) + ", " +
                    std::to_string(opts.rep_max) + "]");
    }
  }
}

void check_moderation(const ledger::LedgerState& state,
                      const InvariantOptions& opts,
                      std::vector<std::string>& out) {
  const auto* store = state.find_store(opts.moderation_contract);
  if (store == nullptr) return;
  std::uint64_t records = 0;
  std::uint64_t open = 0;
  std::uint64_t upheld = 0;
  for (const auto& [key, value] : *store) {
    if (!starts_with(key, "report/")) continue;
    ++records;
    auto view = moderation::ModerationContract::report(
        state, opts.moderation_contract,
        std::strtoull(key.c_str() + std::strlen("report/"), nullptr, 10));
    if (!view.ok()) {
      out.push_back("moderation: corrupt record at " + key);
      continue;
    }
    switch (view.value().status) {
      case moderation::ReportStatus::kOpen: ++open; break;
      case moderation::ReportStatus::kUpheld: ++upheld; break;
      case moderation::ReportStatus::kDismissed: break;
    }
  }
  const auto& name = opts.moderation_contract;
  if (moderation::ModerationContract::report_count(state, name) != records) {
    out.push_back("moderation: next_id != report records");
  }
  if (moderation::ModerationContract::open_count(state, name) != open) {
    out.push_back("moderation: open_count != open records");
  }
  if (moderation::ModerationContract::upheld_count(state, name) != upheld) {
    out.push_back("moderation: upheld_count != upheld records");
  }
}

}  // namespace

std::vector<std::string> check_invariants(const ledger::LedgerState& state,
                                          const InvariantOptions& opts,
                                          const ledger::Mempool* pool) {
  std::vector<std::string> out;
  if (opts.check_conservation) check_conservation(state, opts, out);
  check_nft(state, opts, out);
  check_dao(state, opts, out);
  check_reputation(state, opts, out);
  check_moderation(state, opts, out);
  if (opts.check_full_rehash &&
      !(state.full_rehash_commitment() == state.commitment())) {
    out.push_back("commitment: full rehash diverges from incremental root");
  }
  if (pool != nullptr && !pool->self_check()) {
    out.push_back("mempool: self_check failed");
  }
  return out;
}

std::vector<std::string> check_sharded_invariants(
    const ledger::ShardedLedger& ledger, const InvariantOptions& opts) {
  const std::size_t n = ledger.num_shards();
  std::vector<std::string> out;

  InvariantOptions per_shard = opts;
  per_shard.check_conservation = false;
  std::uint64_t circulating = 0;
  std::uint64_t burned = 0;
  std::vector<std::uint64_t> locked_by(n, 0);
  std::vector<std::uint64_t> minted_from(n, 0);

  for (std::uint32_t s = 0; s < n; ++s) {
    const ledger::LedgerState& state = ledger.state(s);
    for (std::string& v : check_invariants(state, per_shard)) {
      out.push_back("shard " + std::to_string(s) + ": " + std::move(v));
    }
    for (const auto& [addr, balance] : state.balances()) circulating += balance;
    burned += state.burned_fees();

    const auto* store = state.find_store(ledger::kXShardContractName);
    if (store == nullptr) continue;
    const auto fetch = [&](const char* key) {
      const auto it = store->find(key);
      return it == store->end() ? 0 : dec_u64(it->second);
    };
    locked_by[s] = fetch(ledger::kXShardLockedTotalKey);
    const std::uint64_t next_id = fetch(ledger::kXShardNextIdKey);

    std::uint64_t receipt_records = 0;
    std::uint64_t locked_in_receipts = 0;
    for (const auto& [key, value] : *store) {
      if (starts_with(key, "receipt/")) {
        ++receipt_records;
        const auto receipt = ledger::CrossShardReceipt::decode(value);
        if (!receipt.ok()) {
          out.push_back("xshard: undecodable receipt at shard " +
                        std::to_string(s) + " " + key);
          continue;
        }
        if (receipt.value().source_shard != s) {
          out.push_back("xshard: receipt " + key + " on shard " +
                        std::to_string(s) + " claims source " +
                        std::to_string(receipt.value().source_shard));
        }
        if (key != ledger::xshard_receipt_key(receipt.value().id)) {
          out.push_back("xshard: receipt id/key mismatch at " + key);
        }
        locked_in_receipts += receipt.value().amount;
      } else if (starts_with(key, "spent/")) {
        // "spent/<16-hex source>/<16-hex id>" minted on THIS shard against a
        // receipt that must exist on the source shard and name this shard.
        const char* cursor = key.c_str() + std::strlen("spent/");
        char* end = nullptr;
        const std::uint64_t src = std::strtoull(cursor, &end, 16);
        const std::uint64_t id =
            end != nullptr && *end == '/' ? std::strtoull(end + 1, nullptr, 16)
                                          : 0;
        if (src >= n) {
          out.push_back("xshard: spent marker with bad source shard: " + key);
          continue;
        }
        minted_from[src] += dec_u64(value);
        const auto* src_store =
            ledger.state(static_cast<std::uint32_t>(src))
                .find_store(ledger::kXShardContractName);
        if (src_store == nullptr) {
          out.push_back("xshard: spent marker without source receipt: " + key);
          continue;
        }
        const auto rit = src_store->find(ledger::xshard_receipt_key(id));
        if (rit == src_store->end()) {
          out.push_back("xshard: spent marker without source receipt: " + key);
          continue;
        }
        const auto receipt = ledger::CrossShardReceipt::decode(rit->second);
        if (!receipt.ok() || receipt.value().dest_shard != s ||
            receipt.value().amount != dec_u64(value)) {
          out.push_back("xshard: spent marker disagrees with receipt: " + key);
        }
      }
    }
    if (receipt_records != next_id) {
      out.push_back("xshard: shard " + std::to_string(s) + " has " +
                    std::to_string(receipt_records) + " receipts but next_id " +
                    std::to_string(next_id));
    }
    if (locked_in_receipts != locked_by[s]) {
      out.push_back("xshard: shard " + std::to_string(s) +
                    " receipt amounts sum to " +
                    std::to_string(locked_in_receipts) + " but locked_total " +
                    std::to_string(locked_by[s]));
    }
  }

  std::uint64_t locked = 0;
  std::uint64_t minted = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    locked += locked_by[s];
    minted += minted_from[s];
    if (minted_from[s] > locked_by[s]) {
      out.push_back("xshard: shard " + std::to_string(s) + " minted " +
                    std::to_string(minted_from[s]) + " against only " +
                    std::to_string(locked_by[s]) + " locked");
    }
  }
  const std::uint64_t total = circulating + burned + locked - minted;
  if (total != opts.total_supply) {
    out.push_back(
        "conservation (sharded): balances(" + std::to_string(circulating) +
        ") + burned(" + std::to_string(burned) + ") + locked(" +
        std::to_string(locked) + ") - minted(" + std::to_string(minted) +
        ") != supply(" + std::to_string(opts.total_supply) + ")");
  }
  return out;
}

}  // namespace mv::scenario
