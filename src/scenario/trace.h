// Event-sourced scenario traces ("mv.trace.v1").
//
// A scenario IS a trace, and the trace IS the regression test: the generator
// (scenario/scenario.h) emits per-round transaction batches, the harness
// (scenario/harness.h) executes them, and this module freezes the whole run
// into one append-only byte stream — environment derivation parameters, every
// submitted transaction round by round, and the per-block StateCommitment
// root the execution produced. Replaying the trace through a fresh stack must
// reproduce the recorded root sequence bit for bit; any divergence is a
// whole-stack regression (ledger, contracts, mempool, scheduler — anything).
//
// Wire format (strict; little-endian, length-prefixed via common/bytes.h):
//
//   u32  version            (kTraceVersion)
//   str  scenario           mix name, provenance + mix lookup at replay
//   u64  seed               every wallet/decision stream derives from this
//   u64  avatars
//   u32  validators
//   u64  genesis_grant
//   u32  max_txs_per_block
//   raw  genesis_root[32]   commitment root of the derived genesis state
//   u32  rounds
//   per round:
//     u32  tx_count
//     per tx: bytes         Transaction::encode()
//     raw  commitment_root[32]   post-block state root
//   raw  checksum[32]       sha256("mv.trace.v1" || all preceding bytes)
//
// The trailing checksum is what makes the "no semantically inert bytes"
// discipline total: provenance fields (the mix name, the seed) do not steer
// the replayed state machine directly, but no byte of the stream — theirs
// included — can change without decode failing. The every-byte mutation fuzz
// in scenario_test.cpp holds this.
#pragma once

#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "ledger/transaction.h"

namespace mv::scenario {

inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr const char* kTraceDomain = "mv.trace.v1";

/// Environment derivation parameters: everything replay needs to rebuild the
/// exact genesis state, wallets, and contract registry the recorder used.
struct TraceHeader {
  std::string scenario;  ///< mix name (scenario/scenario.h catalog)
  std::uint64_t seed = 0;
  std::uint64_t avatars = 0;
  std::uint32_t validators = 0;
  std::uint64_t genesis_grant = 0;
  std::uint32_t max_txs_per_block = 0;
  /// Commitment root of the genesis state derived from the fields above.
  /// Replay rebuilds the environment and refuses to run if its genesis does
  /// not reproduce this root — catches wallet-derivation or genesis drift
  /// before a single block is replayed.
  crypto::Digest genesis_root{};
};

/// One consensus round: the transactions submitted (in submission order) and
/// the state root the committed block produced.
struct TraceRound {
  std::vector<ledger::Transaction> txs;
  crypto::Digest commitment_root{};
};

struct Trace {
  TraceHeader header;
  std::vector<TraceRound> rounds;

  [[nodiscard]] std::size_t total_txs() const;

  [[nodiscard]] Bytes encode() const;
  /// Strict decode: checksum verified over the whole stream first, then
  /// version, bounded counts (a forged count larger than the remaining bytes
  /// is rejected before any allocation), per-transaction strict decode, and
  /// an exhausted check. Every failure names a trace.* code.
  [[nodiscard]] static Result<Trace> decode(const Bytes& bytes);
};

/// Read/write helpers for golden-trace files (tests/data/*.trace).
[[nodiscard]] Result<Trace> load_trace(const std::string& path);
[[nodiscard]] Status save_trace(const Trace& trace, const std::string& path);

}  // namespace mv::scenario
