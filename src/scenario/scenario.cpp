#include "scenario/scenario.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "nft/contract.h"

namespace mv::scenario {

namespace {

/// Salt for the environment wallet stream ("mv.env.v1"-ish constant). Part
/// of the trace format: changing it orphans every recorded trace.
constexpr std::uint64_t kEnvSalt = 0x6d762e656e762e31ULL;
/// Salt for the generator decision stream.
constexpr std::uint64_t kGenSalt = 0x6d762e67656e2e31ULL;

constexpr const char* kNftName = "nft";

constexpr std::uint64_t kWashBasePrice = 5'000;
constexpr std::uint64_t kWashMaxPrice = 40'000;
constexpr int kRugBatch = 4;            ///< tokens per rug-pull cycle
constexpr int kRugMinVictims = 2;       ///< sales that trigger the exit
constexpr std::int64_t kRugPatience = 8;  ///< rounds before exiting anyway

const char* kCategories[] = {"gaze", "spatial_map", "mic", "heart_rate"};
const char* kPurposes[] = {"render", "ads", "analytics"};
const char* kPets[] = {"laplace(eps=1.0)", "k-anon(5)", "none"};

/// Memoized prefix of one env wallet stream. Wallet derivation (a keypair
/// per avatar) dominates build_env for large casts, and every record/replay
/// pair — plus every determinism test sweeping thread counts over the same
/// seed — re-derives the identical stream. The memo keeps the stream's Rng
/// so a later call needing a longer prefix extends it instead of starting
/// over; the derivation order (and thus every byte of every trace) is
/// unchanged.
struct WalletStream {
  Rng rng{0};
  std::vector<crypto::Wallet> wallets;
};

std::vector<crypto::Wallet> derive_env_wallets(std::uint64_t stream_seed,
                                               std::size_t count) {
  static std::mutex mu;
  static std::map<std::uint64_t, WalletStream> streams;
  std::lock_guard<std::mutex> lock(mu);
  // Distinct seeds are rare (a handful per test binary / bench run); drop
  // the whole memo rather than track recency if a run somehow churns seeds.
  if (streams.size() > 64 && !streams.contains(stream_seed)) streams.clear();
  auto [it, inserted] = streams.try_emplace(stream_seed);
  WalletStream& s = it->second;
  if (inserted) s.rng = Rng(stream_seed);
  s.wallets.reserve(count);
  while (s.wallets.size() < count) s.wallets.emplace_back(s.rng);
  return {s.wallets.begin(),
          s.wallets.begin() + static_cast<std::ptrdiff_t>(count)};
}

}  // namespace

ScenarioMix market_rush_mix() {
  return ScenarioMix{1.0, 6.0, 0.3, 0.5, 0.7, 0.5, 0.18};
}
ScenarioMix governance_wave_mix() {
  return ScenarioMix{0.5, 0.5, 6.0, 0.3, 0.7, 0.5, 0.03};
}
ScenarioMix report_storm_mix() {
  return ScenarioMix{0.5, 0.8, 0.4, 6.0, 1.0, 1.0, 0.10};
}
ScenarioMix mixed_city_mix() { return ScenarioMix{}; }

Result<ScenarioMix> mix_by_name(const std::string& name) {
  if (name == "market_rush") return market_rush_mix();
  if (name == "governance_wave") return governance_wave_mix();
  if (name == "report_storm") return report_storm_mix();
  if (name == "mixed_city") return mixed_city_mix();
  return make_error(errc::kTraceBadMagic, "unknown scenario mix: " + name);
}

std::vector<std::string> mix_catalog() {
  return {"market_rush", "governance_wave", "report_storm", "mixed_city"};
}

TraceHeader ScenarioConfig::header() const {
  TraceHeader h;
  h.scenario = mix;
  h.seed = seed;
  h.avatars = avatars;
  h.validators = validators;
  h.genesis_grant = genesis_grant;
  h.max_txs_per_block = max_txs_per_block;
  return h;
}

std::vector<crypto::PublicKey> ScenarioEnv::validator_keys() const {
  std::vector<crypto::PublicKey> keys;
  keys.reserve(validators.size());
  for (const auto& w : validators) keys.push_back(w.public_key());
  return keys;
}

Result<ScenarioEnv> build_env(const TraceHeader& header) {
  if (header.avatars < 8 || header.avatars > (1ull << 22)) {
    return make_error(errc::kTraceBadCount, "avatars out of [8, 2^22]");
  }
  if (header.validators == 0 || header.validators > 64) {
    return make_error(errc::kTraceBadCount, "validators out of [1, 64]");
  }
  if (header.max_txs_per_block == 0) {
    return make_error(errc::kTraceBadCount, "max_txs_per_block == 0");
  }
  if (header.genesis_grant < 1'000) {
    return make_error(errc::kTraceBadCount, "genesis_grant below 1000");
  }
  ScenarioEnv env;
  // One wallet stream, fixed derivation order — part of the trace format.
  // The stream is memoized per seed: validators, then the moderator, then
  // the avatars, exactly as the historical inline derivation laid them out.
  auto wallets = derive_env_wallets(header.seed ^ kEnvSalt,
                                    header.validators + 1 + header.avatars);
  auto next = wallets.begin();
  env.validators.reserve(header.validators);
  for (std::uint32_t i = 0; i < header.validators; ++i) {
    env.validators.push_back(*next++);
  }
  env.moderator.emplace(*next++);
  env.avatars.assign(next, wallets.end());
  env.moderation.moderator = env.moderator->address();

  auto contracts = std::make_shared<ledger::ContractRegistry>();
  contracts->install(std::make_shared<nft::NftContract>());
  contracts->install(std::make_shared<dao::DaoContract>(env.dao));
  contracts->install(std::make_shared<reputation::ReputationContract>(env.reputation));
  contracts->install(std::make_shared<moderation::ModerationContract>(env.moderation));
  env.contracts = std::move(contracts);

  env.genesis.credit(env.moderator->address(), header.genesis_grant);
  for (const auto& w : env.avatars) {
    env.genesis.credit(w.address(), header.genesis_grant);
  }
  env.total_supply = header.genesis_grant * (header.avatars + 1);
  return env;
}

std::uint64_t GeneratorStats::total() const {
  return transfers + audits + mints + lists + buys + cancels + token_moves +
         joins + proposals + votes + finalizes + reports + resolves + ratings;
}

ScenarioGenerator::ScenarioGenerator(const ScenarioConfig& config,
                                     const ScenarioMix& mix,
                                     const ScenarioEnv& env)
    : mix_(mix),
      env_(env),
      txs_per_round_(std::min(config.txs_per_round, config.max_txs_per_block)),
      rng_(config.seed ^ kGenSalt) {
  const std::size_t n = env_.avatars.size();
  avatars_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    avatars_[i].balance = config.genesis_grant;
    index_of_[env_.avatars[i].address().value] = i;
  }
  mod_balance_ = config.genesis_grant;

  // Scam population: a small dedicated prefix of the avatar set, split into
  // wash-trade pairs and rug-pull operators. Organic picks skip them, so
  // every scam wallet's on-chain footprint is purely its pattern.
  if (mix_.scam_share > 0.0 && n >= 32) {
    scam_count_ = std::clamp<std::size_t>(n / 50, 4, 512) & ~std::size_t{1};
    const std::size_t wash_avatars = (scam_count_ / 2) & ~std::size_t{1};
    for (std::size_t i = 0; i + 1 < wash_avatars; i += 2) {
      WashPair pair;
      pair.a = i;
      pair.b = i + 1;
      wash_pairs_.push_back(pair);
    }
    for (std::size_t i = wash_avatars; i < scam_count_; ++i) {
      RugOp op;
      op.scammer = i;
      op.sink = (i + 1) % scam_count_;
      rug_ops_.push_back(op);
    }
  }
}

std::uint64_t ScenarioGenerator::spendable(std::size_t avatar) const {
  const auto& a = avatars_[avatar];
  return a.balance > a.spent ? a.balance - a.spent : 0;
}

std::uint64_t ScenarioGenerator::next_fee() { return 1 + rng_.next_below(8); }

std::size_t ScenarioGenerator::pick_organic() {
  return scam_count_ + rng_.next_below(avatars_.size() - scam_count_);
}

bool ScenarioGenerator::token_free(std::uint64_t token) const {
  return touched_tokens_.count(token) == 0;
}

void ScenarioGenerator::touch_token(std::uint64_t token) {
  touched_tokens_.insert(token);
}

void ScenarioGenerator::emit(ledger::Transaction tx) {
  round_txs_.push_back(std::move(tx));
}

void ScenarioGenerator::charge(std::size_t avatar, std::uint64_t amount) {
  AvatarModel& a = avatars_[avatar];
  // First reservation this round: remember the avatar so settling scans the
  // handful of spenders, not the whole population (`spent == 0` makes the
  // list duplicate-free until on_round_committed resets it).
  if (a.spent == 0 && amount > 0) dirty_spenders_.push_back(avatar);
  a.spent += amount;
}

void ScenarioGenerator::remove_listing(std::uint64_t token) {
  const auto it = listing_pos_.find(token);
  if (it == listing_pos_.end()) return;  // machine-private (wash) listing
  const std::size_t pos = it->second;
  const std::uint64_t last = organic_listings_.back();
  organic_listings_[pos] = last;
  listing_pos_[last] = pos;
  organic_listings_.pop_back();
  listing_pos_.erase(it);
}

void ScenarioGenerator::add_listing(std::uint64_t token, std::uint64_t price,
                                    bool organic) {
  tokens_[token].listed = true;
  tokens_[token].price = price;
  if (organic) {
    listing_pos_[token] = organic_listings_.size();
    organic_listings_.push_back(token);
  }
}

void ScenarioGenerator::settle_buy(std::size_t buyer, std::uint64_t token,
                                   std::uint64_t fee) {
  TokenModel& t = tokens_[token];
  const std::uint64_t price = t.price;
  const std::uint64_t royalty = price * t.royalty_bps / 10'000;
  pending_credits_.emplace_back(t.owner, price - royalty);
  if (royalty > 0) pending_credits_.emplace_back(t.creator, royalty);
  charge(buyer, price + fee);
  remove_listing(token);
  t.owner = buyer;
  t.listed = false;
  t.price = 0;
  touch_token(token);
}

std::vector<ledger::Transaction> ScenarioGenerator::next_round() {
  round_txs_.clear();
  touched_tokens_.clear();
  proposed_this_round_ = false;

  const double total_w = mix_.transfer + mix_.nft + mix_.dao +
                         mix_.moderation + mix_.reputation + mix_.audit;
  const std::size_t target = txs_per_round_;
  const std::size_t max_attempts = target * 10 + 100;
  for (std::size_t attempts = 0;
       round_txs_.size() < target && attempts < max_attempts && total_w > 0;
       ++attempts) {
    double x = rng_.uniform() * total_w;
    if ((x -= mix_.transfer) < 0) {
      (void)try_transfer();
    } else if ((x -= mix_.nft) < 0) {
      if (scam_count_ > 0 && rng_.chance(mix_.scam_share)) {
        (void)try_scam();
      } else {
        (void)try_nft();
      }
    } else if ((x -= mix_.dao) < 0) {
      (void)try_dao();
    } else if ((x -= mix_.moderation) < 0) {
      (void)try_moderation();
    } else if ((x -= mix_.reputation) < 0) {
      (void)try_reputation();
    } else {
      (void)try_audit();
    }
  }
  // Audit records have no preconditions beyond the fee — top the round up so
  // degenerate mixes still produce full blocks.
  while (round_txs_.size() < target) {
    if (!try_audit()) break;
  }

  std::vector<ledger::Transaction> out = std::move(round_txs_);
  round_txs_.clear();
  return out;
}

bool ScenarioGenerator::try_transfer() {
  const std::size_t a = pick_organic();
  const std::uint64_t fee = next_fee();
  const std::uint64_t amount = 1 + rng_.next_below(200);
  if (spendable(a) < amount + fee) return false;
  std::size_t to = rng_.next_below(avatars_.size());
  if (to == a) to = (to + 1) % avatars_.size();
  AvatarModel& sender = avatars_[a];
  emit(ledger::make_transfer(env_.avatars[a], sender.next_nonce++,
                             env_.avatars[to].address(), amount, fee, rng_));
  charge(a, amount + fee);
  pending_credits_.emplace_back(to, amount);
  ++stats_.transfers;
  return true;
}

bool ScenarioGenerator::try_audit() {
  const std::size_t a = pick_organic();
  const std::uint64_t fee = next_fee();
  if (spendable(a) < fee) return false;
  ledger::AuditRecordBody body;
  body.data_category = kCategories[rng_.next_below(4)];
  body.purpose = kPurposes[rng_.next_below(3)];
  body.subject = env_.avatars[a].address().value;
  body.pet_applied = kPets[rng_.next_below(3)];
  emit(ledger::make_audit_record(env_.avatars[a], avatars_[a].next_nonce++,
                                 std::move(body), fee, rng_));
  charge(a, fee);
  ++stats_.audits;
  return true;
}

bool ScenarioGenerator::try_nft() {
  const std::size_t a = pick_organic();
  const std::uint64_t fee = next_fee();
  const double roll = rng_.uniform();
  if (roll < 0.35) {  // mint
    if (spendable(a) < fee) return false;
    const std::uint32_t royalty = static_cast<std::uint32_t>(rng_.next_below(1001));
    const std::string uri = "asset/" + std::to_string(rng_.next_u64() & 0xffffff);
    emit(ledger::make_contract_call(env_.avatars[a], avatars_[a].next_nonce++,
                                    kNftName, "mint",
                                    nft::NftContract::encode_mint(uri, royalty),
                                    fee, rng_));
    charge(a, fee);
    ++stats_.mints;
    return true;
  }
  if (roll < 0.60) {  // list an owned token
    auto& owned = avatars_[a].owned;
    if (owned.empty() || spendable(a) < fee) return false;
    const std::size_t k = rng_.next_below(owned.size());
    const std::uint64_t token = owned[k];
    if (!token_free(token)) return false;
    const std::uint64_t price = 50 + rng_.next_below(451);
    emit(ledger::make_contract_call(env_.avatars[a], avatars_[a].next_nonce++,
                                    kNftName, "list",
                                    nft::NftContract::encode_list(token, price),
                                    fee, rng_));
    charge(a, fee);
    owned[k] = owned.back();
    owned.pop_back();
    add_listing(token, price, /*organic=*/true);
    touch_token(token);
    ++stats_.lists;
    return true;
  }
  if (roll < 0.85) {  // buy a committed listing
    if (organic_listings_.empty()) return false;
    const std::uint64_t token =
        organic_listings_[rng_.next_below(organic_listings_.size())];
    if (!token_free(token)) return false;
    const TokenModel& t = tokens_[token];
    if (t.owner == a) return false;
    if (spendable(a) < t.price + fee) return false;
    emit(ledger::make_contract_call(env_.avatars[a], avatars_[a].next_nonce++,
                                    kNftName, "buy",
                                    nft::NftContract::encode_token(token), fee,
                                    rng_));
    settle_buy(a, token, fee);
    avatars_[a].owned.push_back(token);
    ++stats_.buys;
    return true;
  }
  if (roll < 0.95) {  // gift/move a token
    auto& owned = avatars_[a].owned;
    if (owned.empty() || spendable(a) < fee) return false;
    const std::size_t k = rng_.next_below(owned.size());
    const std::uint64_t token = owned[k];
    if (!token_free(token)) return false;
    const std::size_t to = pick_organic();
    if (to == a) return false;
    emit(ledger::make_contract_call(
        env_.avatars[a], avatars_[a].next_nonce++, kNftName, "transfer",
        nft::NftContract::encode_transfer(token, env_.avatars[to].address()),
        fee, rng_));
    charge(a, fee);
    owned[k] = owned.back();
    owned.pop_back();
    avatars_[to].owned.push_back(token);
    tokens_[token].owner = to;
    touch_token(token);
    ++stats_.token_moves;
    return true;
  }
  // cancel: act as the owner of a random organic listing
  if (organic_listings_.empty()) return false;
  const std::uint64_t token =
      organic_listings_[rng_.next_below(organic_listings_.size())];
  if (!token_free(token)) return false;
  const std::size_t owner = tokens_[token].owner;
  if (owner < scam_count_) return false;  // rug listings exit via the machine
  if (spendable(owner) < fee) return false;
  emit(ledger::make_contract_call(env_.avatars[owner],
                                  avatars_[owner].next_nonce++, kNftName,
                                  "cancel", nft::NftContract::encode_token(token),
                                  fee, rng_));
  charge(owner, fee);
  remove_listing(token);
  tokens_[token].listed = false;
  tokens_[token].price = 0;
  avatars_[owner].owned.push_back(token);
  touch_token(token);
  ++stats_.cancels;
  return true;
}

bool ScenarioGenerator::try_dao() {
  const std::size_t a = pick_organic();
  const std::uint64_t fee = next_fee();
  if (spendable(a) < fee) return false;
  AvatarModel& m = avatars_[a];
  if (!m.member) {
    emit(ledger::make_contract_call(env_.avatars[a], m.next_nonce++,
                                    env_.dao.name, "join", Bytes{}, fee, rng_));
    charge(a, fee);
    m.member = true;  // same-sender: join orders before any later tx of a
    ++stats_.joins;
    return true;
  }
  const std::int64_t period = env_.dao.voting_period_blocks;
  const bool want_propose = !proposed_this_round_ && rng_.chance(0.1);
  if (!want_propose) {
    // Vote on an open proposal committed in an earlier round.
    const std::size_t window_start =
        proposals_.size() > static_cast<std::size_t>(period)
            ? proposals_.size() - static_cast<std::size_t>(period)
            : 0;
    for (std::size_t id = proposals_.size(); id-- > window_start;) {
      ProposalModel& p = proposals_[id];
      if (p.created_height >= height_) continue;       // committed this round
      if (height_ >= p.created_height + period) continue;  // window closed
      if (p.voted.count(a) != 0) continue;
      const double r = rng_.uniform();
      const std::uint8_t choice = r < 0.5 ? 0 : (r < 0.8 ? 1 : 2);
      emit(ledger::make_contract_call(env_.avatars[a], m.next_nonce++,
                                      env_.dao.name, "vote",
                                      dao::DaoContract::encode_vote(id, choice),
                                      fee, rng_));
      charge(a, fee);
      p.voted.insert(a);
      ++stats_.votes;
      return true;
    }
  }
  if (!proposed_this_round_) {
    // One proposal per round keeps id assignment trivially deterministic
    // *and* matches the reconciled count; many ballots per proposal is the
    // shape governance waves take anyway.
    const std::string title = "prop-" + std::to_string(proposals_.size());
    emit(ledger::make_contract_call(env_.avatars[a], m.next_nonce++,
                                    env_.dao.name, "propose",
                                    dao::DaoContract::encode_propose(title),
                                    fee, rng_));
    charge(a, fee);
    ProposalModel p;
    p.created_height = height_;
    proposals_.push_back(std::move(p));
    proposed_this_round_ = true;
    ++stats_.proposals;
    return true;
  }
  // Finalize the oldest proposal whose window has closed.
  while (finalize_cursor_ < proposals_.size() &&
         proposals_[finalize_cursor_].finalized) {
    ++finalize_cursor_;
  }
  if (finalize_cursor_ < proposals_.size()) {
    ProposalModel& p = proposals_[finalize_cursor_];
    if (!p.finalized && height_ >= p.created_height + period &&
        p.created_height < height_) {
      emit(ledger::make_contract_call(
          env_.avatars[a], m.next_nonce++, env_.dao.name, "finalize",
          dao::DaoContract::encode_finalize(finalize_cursor_), fee, rng_));
      charge(a, fee);
      p.finalized = true;
      ++stats_.finalizes;
      return true;
    }
  }
  return false;
}

bool ScenarioGenerator::try_moderation() {
  if (resolve_head_ < open_reports_.size() && rng_.chance(0.35)) {
    const std::uint64_t fee = next_fee();
    if (mod_balance_ - mod_spent_ < fee) return false;
    const std::uint64_t id = open_reports_[resolve_head_++];
    const bool uphold = rng_.chance(0.6);
    emit(ledger::make_contract_call(
        *env_.moderator, mod_nonce_++, env_.moderation.name, "resolve",
        moderation::ModerationContract::encode_resolve(id, uphold), fee, rng_));
    mod_spent_ += fee;
    ++stats_.resolves;
    return true;
  }
  const std::size_t reporter = pick_organic();
  const std::uint64_t fee = next_fee();
  if (spendable(reporter) < fee) return false;
  std::size_t offender;
  if (scam_count_ > 0 && rng_.chance(0.4)) {
    offender = rng_.next_below(scam_count_);  // the city suspects its scammers
  } else {
    offender = rng_.next_below(avatars_.size());
    if (offender == reporter) offender = (offender + 1) % avatars_.size();
  }
  const std::uint8_t kind = static_cast<std::uint8_t>(rng_.next_below(4));
  const std::string detail = "case-" + std::to_string(stats_.reports);
  emit(ledger::make_contract_call(
      env_.avatars[reporter], avatars_[reporter].next_nonce++,
      env_.moderation.name, "report",
      moderation::ModerationContract::encode_report(
          env_.avatars[offender].address(), kind, detail),
      fee, rng_));
  charge(reporter, fee);
  ++stats_.reports;
  return true;
}

bool ScenarioGenerator::try_reputation() {
  const std::size_t rater = pick_organic();
  const std::uint64_t fee = next_fee();
  if (spendable(rater) < fee) return false;
  std::size_t subject = rng_.next_below(avatars_.size());
  if (subject == rater) subject = (subject + 1) % avatars_.size();
  const auto key = std::make_pair(rater, subject);
  const auto it = last_rated_.find(key);
  if (it != last_rated_.end() &&
      height_ - it->second < env_.reputation.cooldown_blocks) {
    return false;
  }
  std::int64_t delta =
      1 + static_cast<std::int64_t>(
              rng_.next_below(static_cast<std::uint64_t>(env_.reputation.max_abs_delta)));
  if (rng_.chance(0.4)) delta = -delta;
  emit(ledger::make_contract_call(
      env_.avatars[rater], avatars_[rater].next_nonce++, env_.reputation.name,
      "rate",
      reputation::ReputationContract::encode_rate(
          env_.avatars[subject].address(), delta),
      fee, rng_));
  charge(rater, fee);
  last_rated_[key] = height_;
  ++stats_.ratings;
  return true;
}

bool ScenarioGenerator::try_scam() {
  const std::size_t machines = wash_pairs_.size() + rug_ops_.size();
  if (machines == 0) return false;
  const std::size_t pick = rng_.next_below(machines);
  if (pick < wash_pairs_.size()) return step_wash(wash_pairs_[pick]);
  return step_rug(rug_ops_[pick - wash_pairs_.size()]);
}

bool ScenarioGenerator::step_wash(WashPair& pair) {
  // One step per round: every leg of the cycle depends on the previous leg
  // having committed.
  if (pair.last_step_round == height_) return false;
  const std::size_t holder = pair.a_holds ? pair.a : pair.b;
  const std::size_t other = pair.a_holds ? pair.b : pair.a;
  const std::uint64_t fee = next_fee();
  switch (pair.phase) {
    case 0: {  // mint the wash vehicle (royalty 0: the pair keeps it all)
      if (mint_tags_.count(holder) != 0 || spendable(holder) < fee) return false;
      emit(ledger::make_contract_call(
          env_.avatars[holder], avatars_[holder].next_nonce++, kNftName, "mint",
          nft::NftContract::encode_mint("wash/" + std::to_string(pair.a), 0),
          fee, rng_));
      charge(holder, fee);
      mint_tags_[holder] = MintTag{true, static_cast<std::size_t>(&pair - wash_pairs_.data())};
      pair.phase = 1;  // has_token flips at reconcile
      pair.last_step_round = height_;
      ++stats_.mints;
      ++stats_.scam_txs;
      return true;
    }
    case 1: {  // holder lists at an escalated price
      if (!pair.has_token || !token_free(pair.token)) return false;
      if (spendable(holder) < fee) return false;
      pair.price = pair.price == 0 ? kWashBasePrice
                                   : std::min(pair.price * 3 / 2, kWashMaxPrice);
      if (pair.price == kWashMaxPrice) pair.price = kWashBasePrice;  // re-arm
      emit(ledger::make_contract_call(
          env_.avatars[holder], avatars_[holder].next_nonce++, kNftName, "list",
          nft::NftContract::encode_list(pair.token, pair.price), fee, rng_));
      charge(holder, fee);
      // Machine-private listing: never entered into organic_listings_, so no
      // bystander can buy the vehicle out of the cycle.
      add_listing(pair.token, pair.price, /*organic=*/false);
      touch_token(pair.token);
      pair.phase = 2;
      pair.last_step_round = height_;
      ++stats_.lists;
      ++stats_.scam_txs;
      return true;
    }
    default: {  // the partner buys it back: one wash leg complete
      if (!token_free(pair.token)) return false;
      if (spendable(other) < pair.price + fee) return false;
      emit(ledger::make_contract_call(
          env_.avatars[other], avatars_[other].next_nonce++, kNftName, "buy",
          nft::NftContract::encode_token(pair.token), fee, rng_));
      settle_buy(other, pair.token, fee);
      pair.a_holds = !pair.a_holds;
      pair.phase = 1;
      pair.last_step_round = height_;
      ++stats_.buys;
      ++stats_.scam_txs;
      ++stats_.wash_trades;
      return true;
    }
  }
}

bool ScenarioGenerator::step_rug(RugOp& op) {
  if (op.last_step_round == height_) return false;
  const std::size_t s = op.scammer;
  const std::uint64_t fee = next_fee();
  if (op.phase == 0) {
    if (op.minted < kRugBatch) {
      if (mint_tags_.count(s) != 0 || spendable(s) < fee) return false;
      // High royalty: even resales kick value back to the operator.
      emit(ledger::make_contract_call(
          env_.avatars[s], avatars_[s].next_nonce++, kNftName, "mint",
          nft::NftContract::encode_mint("rug/" + std::to_string(s), 4'500), fee,
          rng_));
      charge(s, fee);
      mint_tags_[s] = MintTag{false, static_cast<std::size_t>(&op - rug_ops_.data())};
      ++op.minted;
      op.last_step_round = height_;
      ++stats_.mints;
      ++stats_.scam_txs;
      return true;
    }
    if (op.tokens.size() < static_cast<std::size_t>(op.minted)) return false;
    op.phase = 1;
  }
  if (op.phase == 1) {
    for (const std::uint64_t t : op.tokens) {
      TokenModel& tok = tokens_[t];
      if (tok.owner != s || tok.listed || !token_free(t)) continue;
      if (spendable(s) < fee) return false;
      const std::uint64_t price = 2'000 + rng_.next_below(3'000);
      emit(ledger::make_contract_call(
          env_.avatars[s], avatars_[s].next_nonce++, kNftName, "list",
          nft::NftContract::encode_list(t, price), fee, rng_));
      charge(s, fee);
      add_listing(t, price, /*organic=*/true);  // bait: the city can buy these
      touch_token(t);
      ++op.listed;
      op.last_step_round = height_;
      ++stats_.lists;
      ++stats_.scam_txs;
      if (op.listed >= op.minted) {
        op.phase = 2;
        op.wait_started = height_;
      }
      return true;
    }
    return false;
  }
  if (op.phase == 2) {
    std::size_t sold = 0;
    for (const std::uint64_t t : op.tokens) {
      if (tokens_[t].owner != s) ++sold;
    }
    if (sold < static_cast<std::size_t>(kRugMinVictims) &&
        height_ - op.wait_started < kRugPatience) {
      return false;  // keep waiting for victims
    }
    op.phase = 3;
  }
  // phase 3: pull the remaining listings, then wire the proceeds out.
  for (const std::uint64_t t : op.tokens) {
    TokenModel& tok = tokens_[t];
    if (tok.owner != s || !tok.listed || !token_free(t)) continue;
    if (spendable(s) < fee) return false;
    emit(ledger::make_contract_call(env_.avatars[s], avatars_[s].next_nonce++,
                                    kNftName, "cancel",
                                    nft::NftContract::encode_token(t), fee,
                                    rng_));
    charge(s, fee);
    remove_listing(t);
    tok.listed = false;
    tok.price = 0;
    touch_token(t);
    op.last_step_round = height_;
    ++stats_.cancels;
    ++stats_.scam_txs;
    return true;
  }
  const std::uint64_t avail = spendable(s);
  if (avail > fee + 4) {
    const std::uint64_t amount = (avail - fee) * 3 / 4;
    emit(ledger::make_transfer(env_.avatars[s], avatars_[s].next_nonce++,
                               env_.avatars[op.sink].address(), amount, fee,
                               rng_));
    charge(s, amount + fee);
    pending_credits_.emplace_back(op.sink, amount);
    ++stats_.transfers;
    ++stats_.scam_txs;
  }
  ++stats_.rug_pulls;
  op.tokens.clear();  // dead inventory stays with the wallet, unlisted
  op.minted = 0;
  op.listed = 0;
  op.phase = 0;
  op.last_step_round = height_;
  return true;
}

void ScenarioGenerator::on_round_committed(const ledger::LedgerState& state) {
  // Settle money: reserved spends become real, deferred credits land.
  for (const auto& [idx, credit] : pending_credits_) {
    avatars_[idx].balance += credit;
  }
  pending_credits_.clear();
  for (const std::size_t idx : dirty_spenders_) {
    AvatarModel& a = avatars_[idx];
    a.balance -= a.spent;
    a.spent = 0;
  }
  dirty_spenders_.clear();
  mod_balance_ -= mod_spent_;
  mod_spent_ = 0;

  // Reconcile contract-assigned token ids out of the committed store: new
  // ids are [known, next_token), and each one's owner (read back, never
  // predicted) routes it to the minting machine or the owner's inventory.
  const std::uint64_t committed_tokens = nft::NftContract::token_count(state);
  for (std::uint64_t id = tokens_.size(); id < committed_tokens; ++id) {
    auto view = nft::NftContract::token(state, id);
    if (!view.ok()) continue;  // unreachable on a consistent ledger
    const auto owner_it = index_of_.find(view.value().owner.value);
    if (owner_it == index_of_.end()) continue;
    const std::size_t owner = owner_it->second;
    TokenModel model;
    model.owner = owner;
    model.creator = owner;
    model.royalty_bps = view.value().royalty_bps;
    tokens_.push_back(model);
    const auto tag = mint_tags_.find(owner);
    if (tag != mint_tags_.end()) {
      if (tag->second.wash) {
        wash_pairs_[tag->second.machine].token = id;
        wash_pairs_[tag->second.machine].has_token = true;
      } else {
        rug_ops_[tag->second.machine].tokens.push_back(id);
      }
      mint_tags_.erase(tag);
    } else {
      avatars_[owner].owned.push_back(id);
    }
  }
  mint_tags_.clear();

  // Reconcile report ids the same way: every new id starts open.
  const std::uint64_t committed_reports =
      moderation::ModerationContract::report_count(state, env_.moderation.name);
  for (std::uint64_t id = known_reports_; id < committed_reports; ++id) {
    open_reports_.push_back(id);
  }
  known_reports_ = committed_reports;

  ++height_;
}

}  // namespace mv::scenario
