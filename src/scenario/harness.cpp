#include "scenario/harness.h"

#include <chrono>
#include <memory>

#include "common/clock.h"
#include "net/network.h"
#include "scenario/invariants.h"

namespace mv::scenario {

namespace {

/// Salts for the harness's own deterministic streams (distinct from the
/// generator's and the environment's).
constexpr std::uint64_t kExecSalt = 0x6d762e657865632eULL;
constexpr std::uint64_t kNetSalt = 0x6d762e6e65742e31ULL;
constexpr std::uint64_t kQuerySalt = 0x6d762e7172792e31ULL;

/// Where each round's transactions come from: the generator (recording) or
/// the trace (replay).
struct RoundSource {
  ScenarioGenerator* gen = nullptr;
  const std::vector<TraceRound>* rounds = nullptr;
};

Result<ReplayResult> execute(const ScenarioEnv& env, const TraceHeader& header,
                             std::size_t rounds, RoundSource src,
                             const ReplayOptions& opts,
                             std::vector<TraceRound>* out_rounds) {
  const auto started = std::chrono::steady_clock::now();
  ReplayResult result;

  SimClock clock;
  net::Network network(clock, Rng(header.seed ^ kNetSalt));

  std::shared_ptr<JobQueue> queue = opts.job_queue;
  if (!queue && opts.use_job_queue) {
    JobQueueConfig qc;
    qc.threads = opts.queue_workers;
    qc.limit(JobClass::kClientQuery) = opts.client_query_limit;
    queue = std::make_shared<JobQueue>(qc);
  }
  auto sig_cache = std::make_shared<crypto::DigestLruSet>();

  ledger::ChainConfig cc;
  cc.validators = env.validator_keys();
  cc.max_txs_per_block = header.max_txs_per_block;
  cc.validation.threads = opts.validation_threads;
  cc.validation.schedule_seed = opts.schedule_seed;
  cc.validation.sig_cache = sig_cache;
  cc.validation.job_queue = queue;
  ledger::Blockchain chain(cc, env.contracts, env.genesis);

  ledger::MempoolConfig mc;
  mc.sig_cache = sig_cache;
  ledger::Mempool pool(mc);

  // Subscription read path: N push-fed light clients, each watching its own
  // account, riding the same queue's kClientQuery lane as proof queries.
  std::unique_ptr<net::SubscriptionServer> server;
  std::unique_ptr<ledger::SubscriptionPublisher> publisher;
  std::vector<std::unique_ptr<ledger::SubscriptionFeed>> feeds;
  if (opts.subscribers > 0) {
    server = std::make_unique<net::SubscriptionServer>(
        network, net::SubscriptionConfig{}, queue.get());
    auto* sp = server.get();
    const auto server_node =
        network.add_node([sp](const net::Message& m) { sp->handle(m); });
    server->bind(server_node);
    publisher = std::make_unique<ledger::SubscriptionPublisher>(chain, *server);
    const std::size_t n = std::min(opts.subscribers, env.avatars.size());
    feeds.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ledger::SubscriptionFeedConfig fc;
      fc.light_client.validators = cc.validators;
      fc.light_client.genesis_hash = chain.genesis_hash();
      fc.accounts = {env.avatars[i].address()};
      auto feed = std::make_unique<ledger::SubscriptionFeed>(network, fc);
      auto* fp = feed.get();
      const auto node =
          network.add_node([fp](const net::Message& m) { fp->handle(m); });
      feed->bind(node);
      feed->subscribe(server_node);
      feeds.push_back(std::move(feed));
    }
    network.run_until_idle();
  }

  InvariantOptions inv;
  inv.total_supply = env.total_supply;
  inv.dao_contract = env.dao.name;
  inv.reputation_contract = env.reputation.name;
  inv.moderation_contract = env.moderation.name;
  inv.rep_min = env.reputation.min_score;
  inv.rep_max = env.reputation.max_score;
  inv.check_full_rehash = opts.check_full_rehash;

  Rng exec_rng(header.seed ^ kExecSalt);
  Rng query_rng(header.seed ^ kQuerySalt);

  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<ledger::Transaction> txs =
        src.gen != nullptr ? src.gen->next_round() : (*src.rounds)[r].txs;
    result.submitted_txs += txs.size();
    for (const auto& tx : txs) {
      Status added = pool.add(tx, chain.state(), static_cast<Tick>(r));
      if (!added.ok()) {
        return make_error(errc::kTraceReplayDiverged,
                          "round " + std::to_string(r) +
                              ": mempool rejected a submitted tx: " +
                              added.error().to_string());
      }
    }
    const auto selected = pool.select(header.max_txs_per_block, chain.state());
    const auto& proposer = env.validators[r % env.validators.size()];
    const ledger::Block block =
        chain.assemble(proposer, selected, static_cast<Tick>(r), exec_rng);
    // The generator's all-valid discipline, enforced: a dropped tx means the
    // generator (or a stack regression) broke the determinism contract.
    if (block.txs.size() != txs.size()) {
      return make_error(
          errc::kTraceReplayDiverged,
          "round " + std::to_string(r) + ": block committed " +
              std::to_string(block.txs.size()) + " of " +
              std::to_string(txs.size()) + " submitted txs");
    }
    if (Status appended = chain.append(block); !appended.ok()) {
      return make_error(errc::kTraceReplayDiverged,
                        "round " + std::to_string(r) +
                            ": append failed: " + appended.error().to_string());
    }
    pool.remove_included(block.txs);
    result.committed_txs += block.txs.size();

    const auto* commitment = chain.commitment_at(static_cast<std::int64_t>(r));
    if (commitment == nullptr) {
      return make_error(errc::kTraceReplayDiverged,
                        "round " + std::to_string(r) + ": tip commitment lost");
    }
    result.commitments.push_back(*commitment);
    if (out_rounds != nullptr) {
      TraceRound round;
      round.txs = std::move(txs);
      round.commitment_root = commitment->root;
      out_rounds->push_back(std::move(round));
    } else if (opts.verify_against_trace &&
               commitment->root != (*src.rounds)[r].commitment_root) {
      ++result.mismatched_blocks;
    }

    if (opts.before_queries) opts.before_queries(static_cast<std::uint32_t>(r));
    for (std::size_t q = 0; q < opts.client_queries_per_round; ++q) {
      const auto& w = env.avatars[query_rng.next_below(env.avatars.size())];
      auto proof = chain.prove_account(w.address(), chain.height() - 1);
      if (proof.ok()) {
        ++result.queries_served;
      } else if (proof.error().code == "chain.overloaded") {
        ++result.queries_shed;
      }
    }
    if (opts.after_queries) opts.after_queries(static_cast<std::uint32_t>(r));

    if (queue) queue->drain();
    if (server) network.run_until_idle();
    clock.advance();

    if (src.gen != nullptr) src.gen->on_round_committed(chain.state());

    const bool periodic =
        opts.invariant_every > 0 && (r + 1) % opts.invariant_every == 0;
    if (periodic || r + 1 == rounds) {
      for (auto& v : check_invariants(chain.state(), inv, &pool)) {
        result.violations.push_back("block " + std::to_string(r) + ": " +
                                    std::move(v));
      }
    }
  }

  if (queue) {
    queue->drain();
    result.queue = queue->stats();
  }
  if (server) {
    network.run_until_idle();
    result.subscriptions = server->stats();
    for (const auto& f : feeds) {
      result.feed_pushes_consumed += f->pushes_consumed();
      result.feed_gaps_detected += f->gaps_detected();
    }
  }
  result.mempool = pool.stats();
  result.validation = chain.validation_stats();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return result;
}

}  // namespace

Result<RecordResult> record(const ScenarioConfig& config,
                            const ReplayOptions& opts) {
  auto mix = mix_by_name(config.mix);
  if (!mix.ok()) return mix.error();
  TraceHeader header = config.header();
  auto env = build_env(header);
  if (!env.ok()) return env.error();
  header.genesis_root = env.value().genesis.commitment().root;

  ScenarioGenerator gen(config, mix.value(), env.value());
  RecordResult out;
  out.trace.header = header;
  RoundSource src;
  src.gen = &gen;
  ReplayOptions ropts = opts;
  ropts.verify_against_trace = false;
  auto run = execute(env.value(), header, config.rounds, src, ropts,
                     &out.trace.rounds);
  if (!run.ok()) return run.error();
  out.run = std::move(run).value();
  out.generated = gen.stats();
  return out;
}

Result<ReplayResult> replay(const Trace& trace, const ReplayOptions& opts) {
  auto env = build_env(trace.header);
  if (!env.ok()) return env.error();
  if (env.value().genesis.commitment().root != trace.header.genesis_root) {
    return make_error(errc::kTraceGenesisMismatch,
                      "derived genesis root differs from the trace header");
  }
  RoundSource src;
  src.rounds = &trace.rounds;
  return execute(env.value(), trace.header, trace.rounds.size(), src, opts,
                 nullptr);
}

}  // namespace mv::scenario
