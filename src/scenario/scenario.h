// Seeded city-at-scale scenario generation: mixed metaverse workloads as
// real ledger traffic.
//
// The generator drives a population of avatars through the paper's abuse and
// governance surfaces — NFT mint/list/trade churn with injected scam
// *patterns* (wash-trade pairs, rug-pull listings), DAO proposal/ballot
// waves, moderation report storms, reputation updates, and privacy-pipeline
// audit records — and emits them as ordinary signed transactions, one batch
// per consensus round. The scams are deliberately protocol-valid: a wash
// trade is two colluding wallets cycling a token at escalating prices, a rug
// pull is a high-royalty mint batch listed high and abandoned once victims
// bite. The *ledger* cannot reject them; detecting the pattern is an
// analytics problem, which is exactly the paper's point — so the harness's
// job is to land them on-chain, attributed in GeneratorStats.
//
// Validity discipline (the determinism contract, DESIGN.md §12): every
// emitted transaction is constructed to succeed in the round it is
// submitted. Per-sender ordering is safe under the mempool's fee-first
// selection (nonce order is preserved within a sender), so the only hazard
// is a cross-sender dependency landing in the wrong order inside one block.
// The generator therefore (a) only targets cross-sender prerequisites
// (listings, proposals, open reports, memberships) that committed in an
// *earlier* round, and (b) serializes same-round access to any one token via
// a touched-set. Contract-assigned ids (token ids, proposal ids, report ids)
// are never predicted: after each round commits, the generator reconciles
// the id delta out of the committed store (`on_round_committed`). The
// harness turns the discipline into an invariant: a block that drops even
// one submitted transaction fails the run (trace.replay_diverged).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/wallet.h"
#include "dao/contract.h"
#include "ledger/state.h"
#include "ledger/transaction.h"
#include "moderation/contract.h"
#include "reputation/contract.h"
#include "scenario/trace.h"

namespace mv::scenario {

/// Relative traffic-class weights for one named scenario. scam_share routes
/// that fraction of nft-class picks into the scam state machines instead of
/// organic market actions.
struct ScenarioMix {
  double transfer = 1.5;
  double nft = 2.0;
  double dao = 1.5;
  double moderation = 1.0;
  double reputation = 1.0;
  double audit = 1.0;
  double scam_share = 0.08;
};

/// The scenario catalog (DESIGN.md §12): named mixes the tests and
/// bench_e2e run by name.
[[nodiscard]] ScenarioMix market_rush_mix();     ///< NFT churn + scam heavy
[[nodiscard]] ScenarioMix governance_wave_mix(); ///< DAO ballot waves
[[nodiscard]] ScenarioMix report_storm_mix();    ///< moderation storms
[[nodiscard]] ScenarioMix mixed_city_mix();      ///< everything at once
[[nodiscard]] Result<ScenarioMix> mix_by_name(const std::string& name);
[[nodiscard]] std::vector<std::string> mix_catalog();

struct ScenarioConfig {
  std::string mix = "mixed_city";
  std::uint64_t seed = 1;
  std::uint64_t avatars = 1000;
  std::uint32_t validators = 4;
  std::uint64_t genesis_grant = 1'000'000;
  std::uint32_t max_txs_per_block = 256;
  std::uint32_t rounds = 50;
  /// Target submissions per round; clamped to max_txs_per_block so every
  /// round's traffic commits in its own block (see the validity discipline).
  std::uint32_t txs_per_round = 200;

  [[nodiscard]] TraceHeader header() const;
};

/// Everything derived from a TraceHeader: wallets (one Rng stream seeded
/// from the trace seed: validators, then the moderator, then avatars — the
/// derivation order is part of the trace format), the contract registry, and
/// the funded genesis state. Recording and replay both build environments
/// through this one function, which is why a trace needs to carry only the
/// header fields and not any key material.
struct ScenarioEnv {
  std::vector<crypto::Wallet> validators;
  std::optional<crypto::Wallet> moderator;  ///< set by build_env
  std::vector<crypto::Wallet> avatars;
  dao::DaoContractConfig dao;
  reputation::ReputationContractConfig reputation;
  moderation::ModerationContractConfig moderation;
  std::shared_ptr<ledger::ContractRegistry> contracts;
  ledger::LedgerState genesis;
  std::uint64_t total_supply = 0;  ///< grant * (avatars + 1): conservation RHS

  [[nodiscard]] std::vector<crypto::PublicKey> validator_keys() const;
};

[[nodiscard]] Result<ScenarioEnv> build_env(const TraceHeader& header);

/// Per-class emission counts; the scam counters attribute the injected
/// patterns (wash_trades counts completed wash buy legs, rug_pulls completed
/// exits) so tests can assert the abuse traffic actually landed.
struct GeneratorStats {
  std::uint64_t transfers = 0;
  std::uint64_t audits = 0;
  std::uint64_t mints = 0;
  std::uint64_t lists = 0;
  std::uint64_t buys = 0;
  std::uint64_t cancels = 0;
  std::uint64_t token_moves = 0;
  std::uint64_t joins = 0;
  std::uint64_t proposals = 0;
  std::uint64_t votes = 0;
  std::uint64_t finalizes = 0;
  std::uint64_t reports = 0;
  std::uint64_t resolves = 0;
  std::uint64_t ratings = 0;
  std::uint64_t scam_txs = 0;     ///< emitted by scam machines (subset of above)
  std::uint64_t wash_trades = 0;  ///< completed wash buy legs
  std::uint64_t rug_pulls = 0;    ///< completed rug-pull exits

  [[nodiscard]] std::uint64_t total() const;
};

class ScenarioGenerator {
 public:
  /// `env` must outlive the generator. The decision stream is forked from
  /// config.seed, so (seed, mix, population) fully determine every emission.
  ScenarioGenerator(const ScenarioConfig& config, const ScenarioMix& mix,
                    const ScenarioEnv& env);

  /// Emit the next round's transactions (all valid by construction; at most
  /// txs_per_round). Call on_round_committed() after the round's block
  /// commits and before the next next_round().
  [[nodiscard]] std::vector<ledger::Transaction> next_round();

  /// Reconcile contract-assigned ids and settle balances from the committed
  /// post-block state.
  void on_round_committed(const ledger::LedgerState& state);

  [[nodiscard]] const GeneratorStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t scam_avatars() const { return scam_count_; }

 private:
  struct AvatarModel {
    std::uint64_t balance = 0;     ///< committed funds
    std::uint64_t spent = 0;       ///< reserved by this round's emissions
    std::uint64_t next_nonce = 0;
    bool member = false;           ///< DAO membership (usable at emission)
    std::vector<std::uint64_t> owned;  ///< reconciled, unlisted tokens
  };
  struct TokenModel {
    std::size_t owner = 0;    ///< avatar index
    std::size_t creator = 0;
    std::uint32_t royalty_bps = 0;
    bool listed = false;
    std::uint64_t price = 0;
  };
  struct ProposalModel {
    std::int64_t created_height = 0;
    bool finalized = false;
    std::set<std::size_t> voted;  ///< avatar indices (emission-time dedupe)
  };
  /// Wash-trade pair: two colluding avatars cycling one token at escalating
  /// prices. One state-machine step per round.
  struct WashPair {
    std::size_t a = 0, b = 0;
    std::uint64_t token = 0;
    bool has_token = false;
    bool a_holds = true;
    int phase = 0;  ///< 0 mint, 1 list (by holder), 2 buy (by the other)
    std::uint64_t price = 0;
    std::int64_t last_step_round = -1;
  };
  /// Rug pull: mint a high-royalty batch, list high, wait for victims, then
  /// cancel the leftovers and wire the proceeds to a sink wallet.
  struct RugOp {
    std::size_t scammer = 0;
    std::size_t sink = 0;
    std::vector<std::uint64_t> tokens;
    int minted = 0;
    int listed = 0;
    int phase = 0;  ///< 0 minting, 1 listing, 2 waiting, 3 exiting
    std::int64_t wait_started = 0;
    std::int64_t last_step_round = -1;
  };
  /// Routes a token minted this round back to the machine that minted it at
  /// reconcile time (one tagged mint per avatar per round).
  struct MintTag {
    bool wash = false;
    std::size_t machine = 0;
  };

  [[nodiscard]] std::uint64_t spendable(std::size_t avatar) const;
  [[nodiscard]] std::uint64_t next_fee();
  [[nodiscard]] std::size_t pick_organic();
  [[nodiscard]] bool token_free(std::uint64_t token) const;
  void touch_token(std::uint64_t token);
  void emit(ledger::Transaction tx);
  void charge(std::size_t avatar, std::uint64_t amount);

  // Organic emitters; each returns true when it emitted at least one tx.
  bool try_transfer();
  bool try_audit();
  bool try_nft();
  bool try_dao();
  bool try_moderation();
  bool try_reputation();
  bool try_scam();
  bool step_wash(WashPair& pair);
  bool step_rug(RugOp& op);

  void remove_listing(std::uint64_t token);
  void add_listing(std::uint64_t token, std::uint64_t price, bool organic);
  /// Model one purchase (organic or wash): ownership flip, listing removal,
  /// buyer reservation, deferred seller/creator credits.
  void settle_buy(std::size_t buyer, std::uint64_t token, std::uint64_t fee);

  const ScenarioMix mix_;
  const ScenarioEnv& env_;
  std::uint32_t txs_per_round_;
  Rng rng_;

  std::vector<AvatarModel> avatars_;
  /// Avatars with spent != 0 in the current round; on_round_committed
  /// settles exactly these instead of scanning every avatar.
  std::vector<std::size_t> dirty_spenders_;
  std::uint64_t mod_balance_ = 0;
  std::uint64_t mod_spent_ = 0;
  std::uint64_t mod_nonce_ = 0;
  std::unordered_map<std::uint64_t, std::size_t> index_of_;  ///< address -> idx

  std::vector<TokenModel> tokens_;
  std::vector<std::uint64_t> organic_listings_;  ///< ids buyable by anyone
  std::unordered_map<std::uint64_t, std::size_t> listing_pos_;

  std::vector<ProposalModel> proposals_;
  bool proposed_this_round_ = false;

  std::vector<std::uint64_t> open_reports_;  ///< committed, unresolved ids
  std::size_t resolve_head_ = 0;             ///< first unresolved slot
  std::uint64_t known_reports_ = 0;
  std::size_t finalize_cursor_ = 0;  ///< first maybe-unfinalized proposal

  std::map<std::pair<std::size_t, std::size_t>, std::int64_t> last_rated_;

  std::size_t scam_count_ = 0;  ///< avatars [0, scam_count_) are scam agents
  std::vector<WashPair> wash_pairs_;
  std::vector<RugOp> rug_ops_;
  std::unordered_map<std::size_t, MintTag> mint_tags_;  ///< avatar -> machine

  std::set<std::uint64_t> touched_tokens_;  ///< per-round serialization
  std::vector<std::pair<std::size_t, std::uint64_t>> pending_credits_;
  std::vector<ledger::Transaction> round_txs_;
  std::int64_t height_ = 0;  ///< height of the round being emitted
  GeneratorStats stats_;
};

}  // namespace mv::scenario
