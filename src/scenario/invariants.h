// Cross-module invariant checks run between replayed blocks.
//
// Per-block commitment roots catch *any* divergence but explain nothing; the
// checks here assert properties that should hold on every consistent ledger
// regardless of workload, so a replay failure comes with a named violation
// instead of just a root mismatch:
//
//   - token conservation: sum(balances) + burned_fees == genesis supply
//   - nft store shape:    owner-record count == next_token; every listing
//                         points at an owned token
//   - dao store shape:    every recorded ballot was cast by a member;
//                         member_count and next_id match the key space
//   - reputation bounds:  every score within [min_score, max_score]
//   - moderation counts:  open/upheld counters match the report records
//   - optional full rehash: incremental accounts root == from-scratch root
//   - optional mempool self_check
#pragma once

#include <string>
#include <vector>

#include "ledger/mempool.h"
#include "ledger/state.h"

namespace mv::scenario {

struct InvariantOptions {
  std::uint64_t total_supply = 0;
  std::string nft_contract = "nft";
  std::string dao_contract = "dao";
  std::string reputation_contract = "reputation";
  std::string moderation_contract = "moderation";
  std::int64_t rep_min = -100;
  std::int64_t rep_max = 100;
  /// Recompute the accounts root from scratch and compare against the
  /// incrementally-maintained commitment. O(accounts log accounts) — on by
  /// default for tests, off for benches.
  bool check_full_rehash = true;
};

/// Returns one human-readable string per violated invariant (empty == clean).
/// `pool`, when given, contributes Mempool::self_check().
[[nodiscard]] std::vector<std::string> check_invariants(
    const ledger::LedgerState& state, const InvariantOptions& opts,
    const ledger::Mempool* pool = nullptr);

}  // namespace mv::scenario
