// Cross-module invariant checks run between replayed blocks.
//
// Per-block commitment roots catch *any* divergence but explain nothing; the
// checks here assert properties that should hold on every consistent ledger
// regardless of workload, so a replay failure comes with a named violation
// instead of just a root mismatch:
//
//   - token conservation: sum(balances) + burned_fees == genesis supply
//   - nft store shape:    owner-record count == next_token; every listing
//                         points at an owned token
//   - dao store shape:    every recorded ballot was cast by a member;
//                         member_count and next_id match the key space
//   - reputation bounds:  every score within [min_score, max_score]
//   - moderation counts:  open/upheld counters match the report records
//   - optional full rehash: incremental accounts root == from-scratch root
//   - optional mempool self_check
#pragma once

#include <string>
#include <vector>

#include "ledger/mempool.h"
#include "ledger/shard.h"
#include "ledger/state.h"

namespace mv::scenario {

struct InvariantOptions {
  std::uint64_t total_supply = 0;
  std::string nft_contract = "nft";
  std::string dao_contract = "dao";
  std::string reputation_contract = "reputation";
  std::string moderation_contract = "moderation";
  std::int64_t rep_min = -100;
  std::int64_t rep_max = 100;
  /// Recompute the accounts root from scratch and compare against the
  /// incrementally-maintained commitment. O(accounts log accounts) — on by
  /// default for tests, off for benches.
  bool check_full_rehash = true;
  /// Per-state token conservation. check_sharded_invariants disables it for
  /// the per-shard passes (cross-shard transfers make any single shard's sum
  /// meaningless) and asserts the cross-shard identity itself.
  bool check_conservation = true;
};

/// Returns one human-readable string per violated invariant (empty == clean).
/// `pool`, when given, contributes Mempool::self_check().
[[nodiscard]] std::vector<std::string> check_invariants(
    const ledger::LedgerState& state, const InvariantOptions& opts,
    const ledger::Mempool* pool = nullptr);

/// Sharded extension: runs the per-shard module checks on every shard, then
/// asserts the invariants that only make sense across the whole fleet —
///
///   - cross-shard conservation: Σ balances + Σ burned_fees
///     + Σ locked_total − Σ minted_total == total_supply
///   - receipt ledger shape: per shard, exactly next_id dense receipt
///     records, each decoding to a receipt naming itself as source
///   - spent-marker integrity: every "spent/<src>/<id>" marker on a shard
///     references an existing receipt on shard <src> destined for the
///     marker's shard with the marked amount, and per source shard the
///     minted sum never exceeds the locked sum (no mint without a lock)
[[nodiscard]] std::vector<std::string> check_sharded_invariants(
    const ledger::ShardedLedger& ledger, const InvariantOptions& opts);

}  // namespace mv::scenario
