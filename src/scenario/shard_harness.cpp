#include "scenario/shard_harness.h"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/job_queue.h"
#include "common/rng.h"
#include "crypto/wallet.h"
#include "scenario/invariants.h"

namespace mv::scenario {

namespace {

// Independent derivation streams; all fold the trace seed.
constexpr std::uint64_t kWalletSalt = 0x6d772e77616c6c65;  // "mw.walle"
constexpr std::uint64_t kMixSalt = 0x6d772e6d69782e31;     // "mw.mix.1"
constexpr std::uint64_t kSigSalt = 0x6d772e7369672e31;     // "mw.sig.1"

struct Env {
  std::vector<crypto::Wallet> validators;
  std::vector<crypto::Wallet> avatars;
  ledger::LedgerState genesis;
};

/// Wallet and genesis derivation is a pure function of the header fields;
/// replay rebuilds the identical environment or refuses to run.
Env build_env(std::uint64_t seed, std::uint32_t validators,
              std::uint64_t avatars, std::uint64_t grant) {
  Env env;
  Rng wrng(seed ^ kWalletSalt);
  env.validators.reserve(validators);
  for (std::uint32_t i = 0; i < validators; ++i) env.validators.emplace_back(wrng);
  env.avatars.reserve(avatars);
  for (std::uint64_t i = 0; i < avatars; ++i) {
    env.avatars.emplace_back(wrng);
    env.genesis.credit(env.avatars.back().address(), grant);
  }
  return env;
}

ledger::ShardConfig make_shard_config(std::size_t num_shards,
                                      const Env& env,
                                      std::uint32_t max_txs_per_block,
                                      std::uint64_t seed,
                                      const MultiWorldOptions& opts) {
  ledger::ShardConfig config;
  config.num_shards = num_shards;
  for (const auto& v : env.validators) config.validators.push_back(v.public_key());
  config.max_txs_per_block = max_txs_per_block;
  config.seed = seed;
  if (opts.queue_workers > 0) {
    JobQueueConfig qc;
    qc.threads = opts.queue_workers;
    config.validation.job_queue = std::make_shared<JobQueue>(qc);
  }
  return config;
}

/// The execution core shared by record and replay: submit one round's
/// transactions, commit the beacon, and insist every shard pool drained (the
/// all-valid discipline of the single-chain harness, per shard).
Result<ledger::BeaconHeader> run_round(ledger::ShardedLedger& ledger,
                                       const std::vector<ledger::Transaction>& txs,
                                       const crypto::Wallet& proposer,
                                       Tick timestamp) {
  for (const auto& tx : txs) {
    if (Status s = ledger.submit(tx); !s.ok()) {
      return make_error(errc::kTraceReplayDiverged,
                        "submit refused: " + s.error().to_string());
    }
  }
  auto beacon = ledger.commit_round(proposer, timestamp);
  if (!beacon.ok()) return beacon;
  for (std::uint32_t s = 0; s < ledger.num_shards(); ++s) {
    if (!ledger.mempool(s).empty()) {
      return make_error(
          errc::kTraceReplayDiverged,
          "shard " + std::to_string(s) + " dropped a submitted tx");
    }
  }
  return beacon;
}

void run_final_invariants(const ledger::ShardedLedger& ledger,
                          std::uint64_t total_supply,
                          MultiWorldResult& result) {
  InvariantOptions inv;
  inv.total_supply = total_supply;
  result.violations = check_sharded_invariants(ledger, inv);
}

}  // namespace

Result<MultiWorldResult> record_multi_world(const MultiWorldConfig& config,
                                            const MultiWorldOptions& opts) {
  if (config.num_shards == 0 || config.validators == 0 ||
      config.avatars < 2) {
    return make_error(errc::kShardBadConfig, "multi-world config needs shards, validators, "
                                 "and at least two avatars");
  }
  Env env = build_env(config.seed, config.validators, config.avatars,
                      config.genesis_grant);
  ledger::ShardedLedger ledger(
      make_shard_config(config.num_shards, env, config.max_txs_per_block,
                        config.seed, opts),
      env.genesis);
  const std::size_t shards = ledger.num_shards();

  // Home shard per avatar, avatar groups per shard, and the shards where a
  // same-world transfer is possible at all.
  std::vector<std::uint32_t> home(env.avatars.size());
  std::vector<std::vector<std::size_t>> by_shard(shards);
  std::unordered_map<std::uint64_t, std::size_t> avatar_of;
  for (std::size_t i = 0; i < env.avatars.size(); ++i) {
    home[i] = ledger::shard_of(env.avatars[i].address(), shards);
    by_shard[home[i]].push_back(i);
    avatar_of[env.avatars[i].address().value] = i;
  }
  std::vector<std::uint32_t> pair_shards;
  for (std::uint32_t s = 0; s < shards; ++s) {
    if (by_shard[s].size() >= 2) pair_shards.push_back(s);
  }

  MultiWorldResult result;
  result.trace.header.scenario =
      kMultiWorldPrefix + std::to_string(config.num_shards);
  result.trace.header.seed = config.seed;
  result.trace.header.avatars = config.avatars;
  result.trace.header.validators = config.validators;
  result.trace.header.genesis_grant = config.genesis_grant;
  result.trace.header.max_txs_per_block = config.max_txs_per_block;
  result.trace.header.genesis_root = env.genesis.commitment().root;

  Rng mix(config.seed ^ kMixSalt);
  Rng sig(config.seed ^ kSigSalt);
  std::vector<std::uint64_t> nonces(env.avatars.size(), 0);
  std::vector<std::uint64_t> minted_next(shards, 0);
  std::vector<ledger::Transaction> queued_mints;
  std::vector<std::size_t> queued_mint_senders;

  for (std::uint32_t round = 0; round < config.rounds; ++round) {
    TraceRound trace_round;
    // One tx per sender per round keeps same-sender nonce ordering out of
    // the mempool's hands entirely.
    std::unordered_set<std::size_t> used(queued_mint_senders.begin(),
                                         queued_mint_senders.end());
    queued_mint_senders.clear();
    // Mints proven against last round's beacon go first.
    for (auto& tx : queued_mints) trace_round.txs.push_back(std::move(tx));
    queued_mints.clear();

    const auto pick_unused = [&](const std::vector<std::size_t>& pool)
        -> std::optional<std::size_t> {
      for (std::size_t attempt = 0; attempt < 4 * pool.size(); ++attempt) {
        const std::size_t cand = pool[mix.next_below(pool.size())];
        if (!used.contains(cand)) return cand;
      }
      return std::nullopt;
    };

    std::vector<std::size_t> everyone(env.avatars.size());
    for (std::size_t i = 0; i < everyone.size(); ++i) everyone[i] = i;

    for (std::uint32_t t = 0; t < config.intra_per_round && !pair_shards.empty();
         ++t) {
      const auto& group =
          by_shard[pair_shards[mix.next_below(pair_shards.size())]];
      const auto sender = pick_unused(group);
      if (!sender) continue;
      std::optional<std::size_t> to;
      for (std::size_t attempt = 0; attempt < 4 * group.size(); ++attempt) {
        const std::size_t cand = group[mix.next_below(group.size())];
        if (cand != *sender) { to = cand; break; }
      }
      if (!to) continue;
      used.insert(*sender);
      const std::uint64_t amount = 1 + mix.next_below(64);
      trace_round.txs.push_back(ledger::make_transfer(
          env.avatars[*sender], nonces[*sender]++,
          env.avatars[*to].address(), amount, /*fee=*/1, sig));
    }

    for (std::uint32_t t = 0; t < config.cross_per_round && shards > 1; ++t) {
      const auto sender = pick_unused(everyone);
      if (!sender) continue;
      // A recipient on any *other* world.
      std::optional<std::size_t> to;
      for (std::size_t attempt = 0; attempt < 4 * everyone.size(); ++attempt) {
        const std::size_t cand = mix.next_below(everyone.size());
        if (home[cand] != home[*sender]) { to = cand; break; }
      }
      if (!to) continue;
      used.insert(*sender);
      const std::uint64_t amount = 1 + mix.next_below(64);
      trace_round.txs.push_back(ledger::make_xshard_lock(
          env.avatars[*sender], nonces[*sender]++, home[*to],
          env.avatars[*to].address(), amount, /*fee=*/1, sig));
    }

    auto beacon = run_round(ledger, trace_round.txs,
                            env.validators[round % env.validators.size()],
                            static_cast<Tick>(round + 1));
    if (!beacon.ok()) return beacon.error();
    trace_round.commitment_root = beacon.value().beacon_root;
    result.beacon_roots.push_back(beacon.value().beacon_root);
    result.committed_txs += trace_round.txs.size();
    result.trace.rounds.push_back(std::move(trace_round));

    // Build next round's mints for every receipt this round's beacon covers.
    if (round + 1 == config.rounds) continue;
    for (std::uint32_t s = 0; s < shards; ++s) {
      for (std::uint64_t id = minted_next[s]; id < ledger.receipt_count(s);
           ++id) {
        auto bundle = ledger.prove_receipt(s, id);
        if (!bundle.ok()) return bundle.error();
        const auto receipt =
            ledger::CrossShardReceipt::decode(bundle.value().receipt);
        if (!receipt.ok()) return receipt.error();
        const std::size_t recipient =
            avatar_of.at(receipt.value().to.value);
        queued_mints.push_back(ledger::make_xshard_mint(
            env.avatars[recipient], nonces[recipient]++, bundle.value(),
            /*fee=*/1, sig));
        queued_mint_senders.push_back(recipient);
        ++result.cross_transfers;
      }
      minted_next[s] = ledger.receipt_count(s);
    }
  }

  if (opts.check_invariants) {
    run_final_invariants(ledger, config.avatars * config.genesis_grant, result);
  }
  return result;
}

Result<MultiWorldResult> replay_multi_world(const Trace& trace,
                                            const MultiWorldOptions& opts) {
  const std::string& name = trace.header.scenario;
  if (name.rfind(kMultiWorldPrefix, 0) != 0) {
    return make_error(errc::kShardBadConfig, "not a multi-world trace: " + name);
  }
  char* end = nullptr;
  const unsigned long long shards =
      std::strtoull(name.c_str() + std::strlen(kMultiWorldPrefix), &end, 10);
  if (end == nullptr || *end != '\0' || shards == 0 || shards > 1024) {
    return make_error(errc::kShardBadConfig, "bad shard count in: " + name);
  }

  Env env = build_env(trace.header.seed, trace.header.validators,
                      trace.header.avatars, trace.header.genesis_grant);
  if (env.genesis.commitment().root != trace.header.genesis_root) {
    return make_error(errc::kTraceGenesisMismatch, "derived genesis root differs from trace");
  }
  if (env.validators.empty()) {
    return make_error(errc::kShardBadConfig, "trace has no validators");
  }
  ledger::ShardedLedger ledger(
      make_shard_config(static_cast<std::size_t>(shards), env,
                        trace.header.max_txs_per_block, trace.header.seed,
                        opts),
      env.genesis);

  MultiWorldResult result;
  result.trace = trace;
  for (std::size_t round = 0; round < trace.rounds.size(); ++round) {
    auto beacon = run_round(ledger, trace.rounds[round].txs,
                            env.validators[round % env.validators.size()],
                            static_cast<Tick>(round + 1));
    if (!beacon.ok()) return beacon.error();
    result.beacon_roots.push_back(beacon.value().beacon_root);
    result.committed_txs += trace.rounds[round].txs.size();
    if (beacon.value().beacon_root != trace.rounds[round].commitment_root) {
      ++result.mismatched_rounds;
    }
  }

  if (opts.check_invariants) {
    run_final_invariants(
        ledger, trace.header.avatars * trace.header.genesis_grant, result);
  }
  return result;
}

}  // namespace mv::scenario
