// Record/replay harness: scenarios as whole-stack differential tests.
//
// record() drives a ScenarioGenerator through the real stack — Mempool
// admission, Blockchain assembly/append, optional JobQueue lanes and
// subscription fan-out — and freezes the run into a Trace. replay() rebuilds
// the environment from the trace header (refusing to run if the derived
// genesis root differs), feeds the recorded rounds through a freshly
// configured stack, and compares every per-block StateCommitment root
// against the recording. Because the recorded roots are a pure function of
// (genesis, transaction sequence), ANY replay configuration — serial or
// parallel validation, inline or threaded JobQueue, with or without
// subscribers — must reproduce them bit for bit; a mismatch localizes a
// regression to the block where the roots first diverge.
//
// The determinism contract (DESIGN.md §12), concretely:
//   1. same seed + config      => byte-identical Trace (generator purity);
//   2. same trace, any opts    => same commitment root sequence;
//   3. a block that drops any submitted tx aborts the run
//      (trace.replay_diverged) — the generator's all-valid discipline is an
//      enforced invariant, not a hope.
#pragma once

#include <functional>
#include <memory>

#include "common/job_queue.h"
#include "ledger/mempool.h"
#include "ledger/parallel.h"
#include "ledger/subscription.h"
#include "scenario/scenario.h"
#include "scenario/trace.h"

namespace mv::scenario {

/// Stack configuration swept by the determinism tests. Every combination
/// must replay a trace to the same commitment roots.
struct ReplayOptions {
  /// ValidationConfig::threads (per-chain pool) when no queue is used.
  std::size_t validation_threads = 1;
  std::uint64_t schedule_seed = 0;
  /// Route validation/consensus/client work through one shared JobQueue.
  bool use_job_queue = false;
  std::size_t queue_workers = 0;  ///< 0 = deterministic inline execution
  JobQueueConfig::Limit client_query_limit{};  ///< kClientQuery shedding
  /// Push-fed light clients subscribed to their own accounts.
  std::size_t subscribers = 0;
  /// prove_account calls issued per round (sheddable kClientQuery traffic).
  std::size_t client_queries_per_round = 0;
  /// Run the cross-module invariant checker every N blocks (0 = only after
  /// the final block). Violations land in ReplayResult::violations.
  std::uint32_t invariant_every = 0;
  bool check_full_rehash = true;  ///< include the O(n) rehash cross-check
  /// Compare each block's root against the trace (off while recording).
  bool verify_against_trace = true;
  /// Externally configured queue; overrides use_job_queue/queue_workers/
  /// client_query_limit. Lets tests hold a handle to the lanes the chain is
  /// actually using (e.g. to park a worker and force deterministic shedding).
  std::shared_ptr<JobQueue> job_queue;
  /// Test seams: invoked with the round index immediately before/after the
  /// round's client queries are issued, ahead of the end-of-round drain.
  std::function<void(std::uint32_t)> before_queries;
  std::function<void(std::uint32_t)> after_queries;
};

struct ReplayResult {
  std::vector<ledger::StateCommitment> commitments;  ///< one per block
  std::size_t submitted_txs = 0;
  std::size_t committed_txs = 0;
  /// Blocks whose root differed from the trace (0 == byte-identical replay).
  std::size_t mismatched_blocks = 0;
  std::vector<std::string> violations;  ///< invariant checker output
  std::size_t queries_served = 0;
  std::size_t queries_shed = 0;  ///< prove_account rejected "chain.overloaded"
  JobQueueStats queue{};
  net::SubscriptionStats subscriptions{};
  std::uint64_t feed_pushes_consumed = 0;  ///< summed over all subscribers
  std::uint64_t feed_gaps_detected = 0;
  ledger::MempoolStats mempool{};
  ledger::ValidationStats validation{};
  double wall_seconds = 0.0;
};

struct RecordResult {
  Trace trace;
  GeneratorStats generated;
  ReplayResult run;  ///< execution metrics of the recording run itself
};

/// Generate and execute a scenario, freezing it into a Trace. The trace
/// contents depend only on (config), never on opts — the stack sweep is the
/// point — but opts shapes the run's metrics (bench_e2e records under load).
[[nodiscard]] Result<RecordResult> record(const ScenarioConfig& config,
                                          const ReplayOptions& opts = {});

/// Re-execute a trace through a fresh stack configured by opts.
[[nodiscard]] Result<ReplayResult> replay(const Trace& trace,
                                          const ReplayOptions& opts = {});

}  // namespace mv::scenario
