#include "scenario/trace.h"

#include <algorithm>
#include <fstream>

namespace mv::scenario {

namespace {

/// Smallest possible encodings, used to bound forged counts before any
/// allocation: a round is at least its tx_count field plus a commitment root;
/// a transaction at least its length prefix.
constexpr std::size_t kMinRoundBytes = 4 + 32;
constexpr std::size_t kMinTxBytes = 4;

crypto::Digest body_checksum(std::span<const std::uint8_t> body) {
  crypto::Sha256 h;
  h.update(std::string_view(kTraceDomain));
  h.update(body);
  return h.finalize();
}

Result<crypto::Digest> read_digest(ByteReader& r) {
  auto raw = r.raw(32);
  if (!raw.ok()) return make_error(errc::kTraceTruncated, "digest");
  crypto::Digest d;
  std::copy(raw.value().begin(), raw.value().end(), d.begin());
  return d;
}

}  // namespace

std::size_t Trace::total_txs() const {
  std::size_t n = 0;
  for (const auto& round : rounds) n += round.txs.size();
  return n;
}

Bytes Trace::encode() const {
  ByteWriter w;
  w.u32(kTraceVersion);
  w.str(header.scenario);
  w.u64(header.seed);
  w.u64(header.avatars);
  w.u32(header.validators);
  w.u64(header.genesis_grant);
  w.u32(header.max_txs_per_block);
  w.raw(header.genesis_root);
  w.u32(static_cast<std::uint32_t>(rounds.size()));
  for (const auto& round : rounds) {
    w.u32(static_cast<std::uint32_t>(round.txs.size()));
    for (const auto& tx : round.txs) w.bytes(tx.encode());
    w.raw(round.commitment_root);
  }
  const crypto::Digest checksum = body_checksum(w.data());
  w.raw(checksum);
  return w.take();
}

Result<Trace> Trace::decode(const Bytes& bytes) {
  // The checksum covers everything before it, so it is verified first: any
  // mutated byte — header, tx payload, recorded root, or the checksum itself
  // — fails here before a single field is interpreted.
  if (bytes.size() < 32 + 4) {
    return make_error(errc::kTraceTruncated,
                      "trace shorter than checksum + version");
  }
  const std::span<const std::uint8_t> body(bytes.data(), bytes.size() - 32);
  const crypto::Digest want = body_checksum(body);
  if (!std::equal(want.begin(), want.end(), bytes.end() - 32)) {
    return make_error(errc::kTraceBadChecksum, "integrity digest mismatch");
  }

  ByteReader r(body);
  auto version = r.u32();
  if (!version.ok()) return make_error(errc::kTraceTruncated, "version");
  if (version.value() != kTraceVersion) {
    return make_error(errc::kTraceBadVersion,
                      "trace version " + std::to_string(version.value()));
  }
  Trace trace;
  auto scenario = r.str();
  auto seed = r.u64();
  auto avatars = r.u64();
  auto validators = r.u32();
  auto grant = r.u64();
  auto max_txs = r.u32();
  if (!scenario.ok() || !seed.ok() || !avatars.ok() || !validators.ok() ||
      !grant.ok() || !max_txs.ok()) {
    return make_error(errc::kTraceTruncated, "header");
  }
  trace.header.scenario = scenario.value();
  trace.header.seed = seed.value();
  trace.header.avatars = avatars.value();
  trace.header.validators = validators.value();
  trace.header.genesis_grant = grant.value();
  trace.header.max_txs_per_block = max_txs.value();
  auto genesis_root = read_digest(r);
  if (!genesis_root.ok()) return genesis_root.error();
  trace.header.genesis_root = genesis_root.value();
  if (trace.header.validators == 0 || trace.header.max_txs_per_block == 0) {
    return make_error(errc::kTraceBadCount, "empty validator set or block cap");
  }

  auto round_count = r.u32();
  if (!round_count.ok()) return make_error(errc::kTraceTruncated, "rounds");
  if (static_cast<std::uint64_t>(round_count.value()) * kMinRoundBytes >
      r.remaining()) {
    return make_error(errc::kTraceBadCount, "round count exceeds stream");
  }
  trace.rounds.reserve(round_count.value());
  for (std::uint32_t i = 0; i < round_count.value(); ++i) {
    TraceRound round;
    auto tx_count = r.u32();
    if (!tx_count.ok()) return make_error(errc::kTraceTruncated, "tx count");
    if (static_cast<std::uint64_t>(tx_count.value()) * kMinTxBytes >
        r.remaining()) {
      return make_error(errc::kTraceBadCount, "tx count exceeds stream");
    }
    round.txs.reserve(tx_count.value());
    for (std::uint32_t t = 0; t < tx_count.value(); ++t) {
      auto raw = r.bytes();
      if (!raw.ok()) return make_error(errc::kTraceTruncated, "tx bytes");
      auto tx = ledger::Transaction::decode(raw.value());
      if (!tx.ok()) {
        return make_error(errc::kTraceBadTx, tx.error().to_string());
      }
      round.txs.push_back(std::move(tx).value());
    }
    auto root = read_digest(r);
    if (!root.ok()) return root.error();
    round.commitment_root = root.value();
    trace.rounds.push_back(std::move(round));
  }
  if (!r.exhausted()) {
    return make_error(errc::kTraceBadCount, "trailing bytes before checksum");
  }
  return trace;
}

Result<Trace> load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return make_error(errc::kTraceTruncated, "cannot open " + path);
  Bytes bytes((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return Trace::decode(bytes);
}

Status save_trace(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::fail(errc::kTraceTruncated, "cannot open " + path);
  const Bytes bytes = trace.encode();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::fail(errc::kTraceTruncated, "write failed: " + path);
  return {};
}

}  // namespace mv::scenario
