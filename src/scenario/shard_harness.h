// Multi-world record/replay: the scenario harness idea lifted onto the
// sharded ledger (ledger/shard.h).
//
// A multi-world run drives several shards at once: intra-world transfers
// stay on their home shard, and every round a few cross-world transfers go
// through the lock-and-mint receipt protocol — locks land in round r, the
// matching mints (carrying receipt bytes + MerkleMapProof against the round-r
// beacon) land in round r+1. The whole run freezes into the SAME Trace wire
// format as single-chain scenarios ("mv.trace.v1", scenario/trace.h), with
//
//   header.scenario        = "multi_world:<num_shards>"
//   header.genesis_root    = commitment root of the UNSHARDED genesis (the
//                            partition is a pure function of it)
//   round.commitment_root  = the round's beacon root (combine_beacon_root
//                            over the per-shard anchors)
//
// so the beacon root sequence is the regression surface: replaying the trace
// through a fresh ShardedLedger — serial or fanned out on a JobQueue — must
// reproduce every beacon root bit for bit, which transitively pins every
// shard's state root, receipt tree, and proof byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ledger/shard.h"
#include "scenario/trace.h"

namespace mv::scenario {

/// header.scenario prefix identifying a multi-world trace.
inline constexpr const char* kMultiWorldPrefix = "multi_world:";

/// Generation parameters. Everything derives from `seed`; two configs that
/// compare equal record byte-identical traces.
struct MultiWorldConfig {
  std::size_t num_shards = 2;
  std::uint64_t seed = 1;
  std::uint64_t avatars = 16;
  std::uint32_t validators = 3;
  std::uint64_t genesis_grant = 1'000'000;
  std::uint32_t rounds = 6;
  std::uint32_t intra_per_round = 8;  ///< same-world transfers per round
  std::uint32_t cross_per_round = 2;  ///< lock(r) -> mint(r+1) pairs per round
  std::uint32_t max_txs_per_block = 128;
};

/// Stack knobs swept by the determinism tests; never part of the trace.
struct MultiWorldOptions {
  /// Workers on the shared JobQueue fanning shard commits out (0 = serial
  /// in-thread commits; results are byte-identical either way).
  std::size_t queue_workers = 0;
  /// Run check_sharded_invariants after the final round.
  bool check_invariants = true;
};

struct MultiWorldResult {
  Trace trace;
  /// One beacon root per round (== the trace's commitment_root column).
  std::vector<crypto::Digest> beacon_roots;
  std::size_t mismatched_rounds = 0;  ///< replay only; 0 == byte-identical
  std::size_t committed_txs = 0;
  std::size_t cross_transfers = 0;  ///< lock/mint pairs completed
  std::vector<std::string> violations;  ///< sharded invariant checker output
};

/// Generate and execute a multi-world mix, freezing it into a Trace.
[[nodiscard]] Result<MultiWorldResult> record_multi_world(
    const MultiWorldConfig& config, const MultiWorldOptions& opts = {});

/// Re-execute a recorded multi-world trace through a fresh ShardedLedger and
/// compare every round's beacon root against the recording.
[[nodiscard]] Result<MultiWorldResult> replay_multi_world(
    const Trace& trace, const MultiWorldOptions& opts = {});

}  // namespace mv::scenario
