#include "policy/engine.h"

#include <set>

namespace mv::policy {

std::vector<Violation> RegulationModule::audit(const DataFlowEvent& event) const {
  std::vector<Violation> out;
  for (const auto& rule : rules_) {
    if (auto v = rule->check(event); v.has_value()) out.push_back(std::move(*v));
  }
  return out;
}

bool RegulationModule::has_rule(const std::string& rule_name) const {
  for (const auto& rule : rules_) {
    if (rule->name() == rule_name) return true;
  }
  return false;
}

ModulePtr make_gdpr_module() {
  // Operational core of GDPR: opt-in consent, purpose limitation, storage
  // limitation, right to erasure (art. 17, "without undue delay" ≈ 30 days),
  // 72h breach notification (art. 33), data minimization via PETs.
  return std::make_shared<RegulationModule>(
      "gdpr",
      std::vector<RulePtr>{
          std::make_shared<ConsentRequired>(),
          std::make_shared<NoticeRequired>(),
          std::make_shared<PurposeLimitation>(),
          std::make_shared<RetentionLimit>(24 * 90),
          std::make_shared<RightToDelete>(24 * 30),
          std::make_shared<BreachNotification>(72),
          std::make_shared<PetRequired>(
              std::set<std::string>{"gaze", "heart_rate", "microphone"}),
      });
}

ModulePtr make_ccpa_module() {
  // Operational core of CCPA: notice at collection, opt-out of sale,
  // deletion within 45 days; consent is opt-out rather than opt-in, so no
  // ConsentRequired rule.
  return std::make_shared<RegulationModule>(
      "ccpa", std::vector<RulePtr>{
                  std::make_shared<NoticeRequired>(),
                  std::make_shared<SaleOptOut>(),
                  std::make_shared<RightToDelete>(24 * 45),
                  std::make_shared<RetentionLimit>(24 * 365),
              });
}

ModulePtr make_baseline_module() {
  // The platform's own floor (§IV-C "some default privacy protection rules
  // should be implemented"): notice + PETs on the psyche-revealing sensors.
  return std::make_shared<RegulationModule>(
      "baseline", std::vector<RulePtr>{
                      std::make_shared<NoticeRequired>(),
                      std::make_shared<PetRequired>(
                          std::set<std::string>{"gaze", "heart_rate"}),
                  });
}

ModulePtr compose(const ModulePtr& a, const ModulePtr& b, std::string name) {
  std::vector<RulePtr> rules;
  std::set<std::string> seen;
  for (const auto& module : {a, b}) {
    for (const auto& rule : module->rules()) {
      if (seen.insert(rule->name()).second) rules.push_back(rule);
    }
  }
  return std::make_shared<RegulationModule>(std::move(name), std::move(rules));
}

void PolicyEngine::set_region_module(const std::string& region, ModulePtr module) {
  const auto it = regions_.find(region);
  if (it != regions_.end()) ++stats_.module_swaps;
  regions_[region] = std::move(module);
}

const RegulationModule* PolicyEngine::region_module(const std::string& region) const {
  const auto it = regions_.find(region);
  return it == regions_.end() ? default_.get() : it->second.get();
}

std::vector<std::pair<std::string, std::string>> PolicyEngine::region_bindings()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(regions_.size());
  for (const auto& [region, module] : regions_) {
    out.emplace_back(region, module->name());
  }
  return out;
}

std::vector<Violation> PolicyEngine::audit(const std::string& region,
                                           const DataFlowEvent& event) {
  ++stats_.events_audited;
  const RegulationModule* module = region_module(region);
  if (module == nullptr) {
    ++unmapped_events_;
    return {};
  }
  auto violations = module->audit(event);
  stats_.violations += violations.size();
  return violations;
}

}  // namespace mv::policy
