// Executable privacy-regulation rules (§II-D).
//
// SUBSTITUTION NOTE (DESIGN.md §4): legal texts are not executable, so each
// rule captures the enforcement-relevant operational core of a provision
// (consent, purpose limitation, retention, deletion deadlines, sale opt-out,
// breach-notification windows, data minimization). A regulation module is a
// named, parameterized bundle of rules — the unit the paper wants to be
// swappable per jurisdiction: "if the metaverse is required to follow the
// local rules, the modules will swap accordingly" (§III-E).
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"

namespace mv::policy {

/// One data-collection/processing episode as seen by the auditor.
struct DataFlowEvent {
  DataFlowId id;
  std::uint64_t subject = 0;
  std::string collector;
  std::string category;          ///< e.g. "gaze", "spatial_map"
  std::string purpose;           ///< what the data was actually used for
  std::string declared_purpose;  ///< what the subject was told
  bool consent = false;
  bool pet_applied = false;
  bool sold = false;             ///< personal data sold to a third party
  bool opt_out_of_sale = false;  ///< subject exercised the sale opt-out
  Tick collected_at = 0;
  Tick observed_at = 0;  ///< audit time ("now" for age-based rules)
  bool deletion_requested = false;
  Tick deletion_requested_at = 0;
  bool deleted = false;
  Tick deleted_at = 0;
  bool breached = false;
  Tick breach_at = 0;
  bool breach_notified = false;
  Tick breach_notified_at = 0;
};

struct Violation {
  std::string rule;
  std::string detail;
  DataFlowId flow;
};

class Rule {
 public:
  virtual ~Rule() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::optional<Violation> check(
      const DataFlowEvent& event) const = 0;
};

using RulePtr = std::shared_ptr<const Rule>;

/// Collection requires prior consent from the subject.
class ConsentRequired final : public Rule {
 public:
  [[nodiscard]] std::string name() const override { return "consent_required"; }
  [[nodiscard]] std::optional<Violation> check(const DataFlowEvent& e) const override;
};

/// Data may only be used for the purpose declared at collection.
class PurposeLimitation final : public Rule {
 public:
  [[nodiscard]] std::string name() const override { return "purpose_limitation"; }
  [[nodiscard]] std::optional<Violation> check(const DataFlowEvent& e) const override;
};

/// Data older than `max_age` ticks must have been deleted.
class RetentionLimit final : public Rule {
 public:
  explicit RetentionLimit(Tick max_age) : max_age_(max_age) {}
  [[nodiscard]] std::string name() const override { return "retention_limit"; }
  [[nodiscard]] std::optional<Violation> check(const DataFlowEvent& e) const override;

 private:
  Tick max_age_;
};

/// A deletion request must be honoured within `deadline` ticks.
class RightToDelete final : public Rule {
 public:
  explicit RightToDelete(Tick deadline) : deadline_(deadline) {}
  [[nodiscard]] std::string name() const override { return "right_to_delete"; }
  [[nodiscard]] std::optional<Violation> check(const DataFlowEvent& e) const override;

 private:
  Tick deadline_;
};

/// Data of subjects who opted out of sale must not be sold (CCPA core).
class SaleOptOut final : public Rule {
 public:
  [[nodiscard]] std::string name() const override { return "sale_opt_out"; }
  [[nodiscard]] std::optional<Violation> check(const DataFlowEvent& e) const override;
};

/// Breaches must be notified within `window` ticks (GDPR art. 33's 72h).
class BreachNotification final : public Rule {
 public:
  explicit BreachNotification(Tick window) : window_(window) {}
  [[nodiscard]] std::string name() const override { return "breach_notification"; }
  [[nodiscard]] std::optional<Violation> check(const DataFlowEvent& e) const override;

 private:
  Tick window_;
};

/// Critical categories must cross the trust boundary PET-protected
/// (data-minimization / §II-D "advocate for PETs").
class PetRequired final : public Rule {
 public:
  explicit PetRequired(std::set<std::string> categories)
      : categories_(std::move(categories)) {}
  [[nodiscard]] std::string name() const override { return "pet_required"; }
  [[nodiscard]] std::optional<Violation> check(const DataFlowEvent& e) const override;

 private:
  std::set<std::string> categories_;
};

/// The subject must have been told *something* (notice-at-collection).
class NoticeRequired final : public Rule {
 public:
  [[nodiscard]] std::string name() const override { return "notice_required"; }
  [[nodiscard]] std::optional<Violation> check(const DataFlowEvent& e) const override;
};

}  // namespace mv::policy
