#include "policy/rules.h"

namespace mv::policy {

std::optional<Violation> ConsentRequired::check(const DataFlowEvent& e) const {
  if (e.consent) return std::nullopt;
  return Violation{name(), "collected without consent", e.id};
}

std::optional<Violation> PurposeLimitation::check(const DataFlowEvent& e) const {
  if (e.declared_purpose.empty() || e.purpose == e.declared_purpose) {
    // An empty declaration is NoticeRequired's problem, not ours.
    return std::nullopt;
  }
  return Violation{name(),
                   "used for '" + e.purpose + "' but declared '" +
                       e.declared_purpose + "'",
                   e.id};
}

std::optional<Violation> RetentionLimit::check(const DataFlowEvent& e) const {
  if (e.deleted) return std::nullopt;
  if (e.observed_at - e.collected_at <= max_age_) return std::nullopt;
  return Violation{name(), "retained past the maximum age", e.id};
}

std::optional<Violation> RightToDelete::check(const DataFlowEvent& e) const {
  if (!e.deletion_requested) return std::nullopt;
  if (e.deleted && e.deleted_at - e.deletion_requested_at <= deadline_) {
    return std::nullopt;
  }
  if (!e.deleted && e.observed_at - e.deletion_requested_at <= deadline_) {
    return std::nullopt;  // still within the deadline
  }
  return Violation{name(), "deletion request not honoured in time", e.id};
}

std::optional<Violation> SaleOptOut::check(const DataFlowEvent& e) const {
  if (!e.sold || !e.opt_out_of_sale) return std::nullopt;
  return Violation{name(), "sold despite subject opt-out", e.id};
}

std::optional<Violation> BreachNotification::check(const DataFlowEvent& e) const {
  if (!e.breached) return std::nullopt;
  if (e.breach_notified && e.breach_notified_at - e.breach_at <= window_) {
    return std::nullopt;
  }
  if (!e.breach_notified && e.observed_at - e.breach_at <= window_) {
    return std::nullopt;  // clock still running
  }
  return Violation{name(), "breach not notified within the window", e.id};
}

std::optional<Violation> PetRequired::check(const DataFlowEvent& e) const {
  if (!categories_.contains(e.category)) return std::nullopt;
  if (e.pet_applied) return std::nullopt;
  return Violation{name(), "critical category '" + e.category + "' shared raw",
                   e.id};
}

std::optional<Violation> NoticeRequired::check(const DataFlowEvent& e) const {
  if (!e.declared_purpose.empty()) return std::nullopt;
  return Violation{name(), "no purpose declared at collection", e.id};
}

}  // namespace mv::policy
