// The modular policy engine (Figure 3 / §II-D / §III-E).
//
// "Using a modular-based framework to construct the privacy regulation
// protections will allow the metaverse to adapt to local authorities'
// specifications and provide a homogeneous policy to protect users' privacy."
// Regions map to regulation modules; modules hot-swap at runtime (the
// "frontiers" question of §III-E is exactly this map), and modules can be
// composed (union of rules) to get the strictest common denominator.
#pragma once

#include <map>

#include "policy/rules.h"

namespace mv::policy {

class RegulationModule {
 public:
  RegulationModule(std::string name, std::vector<RulePtr> rules)
      : name_(std::move(name)), rules_(std::move(rules)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<RulePtr>& rules() const { return rules_; }

  /// All violations of this module's rules by one event.
  [[nodiscard]] std::vector<Violation> audit(const DataFlowEvent& event) const;

  [[nodiscard]] bool has_rule(const std::string& rule_name) const;

 private:
  std::string name_;
  std::vector<RulePtr> rules_;
};

using ModulePtr = std::shared_ptr<const RegulationModule>;

/// Prebuilt modules. Tick unit: hours (GDPR's 72h breach window is 72 ticks).
[[nodiscard]] ModulePtr make_gdpr_module();
[[nodiscard]] ModulePtr make_ccpa_module();
[[nodiscard]] ModulePtr make_baseline_module();

/// Union of two modules' rules (deduplicated by rule name): the strictest
/// policy both jurisdictions accept — the paper's "homogeneous policy".
[[nodiscard]] ModulePtr compose(const ModulePtr& a, const ModulePtr& b,
                                std::string name);

struct EngineStats {
  std::uint64_t events_audited = 0;
  std::uint64_t violations = 0;
  std::uint64_t module_swaps = 0;

  [[nodiscard]] double compliance_rate() const {
    return events_audited
               ? 1.0 - static_cast<double>(violations) /
                           static_cast<double>(events_audited)
               : 1.0;
  }
};

class PolicyEngine {
 public:
  /// Bind a region to a module; rebinding an existing region is a hot swap.
  void set_region_module(const std::string& region, ModulePtr module);
  [[nodiscard]] const RegulationModule* region_module(const std::string& region) const;

  /// Audit one event under its region's module. Unmapped regions fall back
  /// to the default module when one is set; otherwise everything passes
  /// (and `unmapped_events` counts the governance gap).
  [[nodiscard]] std::vector<Violation> audit(const std::string& region,
                                             const DataFlowEvent& event);

  void set_default_module(ModulePtr module) { default_ = std::move(module); }

  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t unmapped_events() const { return unmapped_events_; }
  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }
  /// (region, module-name) pairs — the portable part of the configuration.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> region_bindings() const;

 private:
  std::map<std::string, ModulePtr> regions_;
  ModulePtr default_;
  EngineStats stats_;
  std::uint64_t unmapped_events_ = 0;
};

}  // namespace mv::policy
