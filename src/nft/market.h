// NFT marketplace admission-policy simulation (§IV-A, bench E4).
//
// The paper: open NFT platforms democratize creation but "allow scammers and
// malicious content creators to take advantage of the system"; invite-only
// policies cut scams but "diminish the advantages of NFTs as an open-access
// content creation tool"; a DAO/reputation-gated scheme is proposed as the
// balance. This agent-based market measures all three on the same workload:
// scam sale rate (quality control) vs honest-creator inclusion (openness).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "reputation/reputation.h"

namespace mv::nft {

enum class AdmissionPolicy : std::uint8_t {
  kOpen,
  kInviteOnly,
  kReputationGated,
};

[[nodiscard]] const char* to_string(AdmissionPolicy policy);

struct MarketConfig {
  std::size_t creators = 1000;
  double scammer_fraction = 0.08;
  /// Invite-only: fraction of creators holding an invite. Invites go to
  /// *known* creators, which correlates with honesty but misses most of the
  /// honest long tail (this is the paper's openness cost).
  double invite_fraction = 0.15;
  double invite_honest_accuracy = 0.95;  ///< P(invitee is honest)
  std::size_t rounds = 20;
  std::size_t mints_per_creator_round = 2;
  std::size_t buyers = 2000;
  double purchases_per_buyer_round = 1.0;
  /// Reputation gating: creators below this score are delisted.
  double delist_threshold = 0.5;
  /// Probability a scammed buyer files a report.
  double report_probability = 0.7;
  /// Probability a scam item is recognisable before purchase (community
  /// labelling); recognised items are skipped by informed buyers.
  double pre_purchase_detection = 0.2;
};

struct MarketMetrics {
  std::uint64_t total_sales = 0;
  std::uint64_t scam_sales = 0;
  std::uint64_t honest_creators = 0;
  std::uint64_t honest_admitted = 0;
  std::uint64_t honest_with_sales = 0;
  std::uint64_t scammers_delisted = 0;

  [[nodiscard]] double scam_sale_rate() const {
    return total_sales ? static_cast<double>(scam_sales) /
                             static_cast<double>(total_sales)
                       : 0.0;
  }
  /// Openness: honest creators admitted to the platform.
  [[nodiscard]] double honest_inclusion() const {
    return honest_creators ? static_cast<double>(honest_admitted) /
                                 static_cast<double>(honest_creators)
                           : 0.0;
  }
  /// Livelihood: honest creators who actually sold something.
  [[nodiscard]] double honest_earning_rate() const {
    return honest_creators ? static_cast<double>(honest_with_sales) /
                                 static_cast<double>(honest_creators)
                           : 0.0;
  }
};

class MarketSim {
 public:
  MarketSim(MarketConfig config, AdmissionPolicy policy, Rng rng);

  /// Run the full simulation and return the metrics.
  MarketMetrics run();

 private:
  struct Creator {
    AccountId id;
    bool scammer = false;
    double quality = 0.5;  ///< honest item quality in [0,1]
    bool admitted = false;
    bool delisted = false;
    std::uint64_t sales = 0;
  };

  struct Item {
    std::size_t creator_index;
    bool scam = false;
    double quality = 0.5;
    bool sold = false;
  };

  void admit_creators();
  void mint_round();
  void purchase_round(Tick now);

  MarketConfig config_;
  AdmissionPolicy policy_;
  Rng rng_;
  reputation::ReputationSystem reputation_;
  std::vector<Creator> creators_;
  std::vector<Item> items_;
  std::vector<std::size_t> open_items_;  ///< indices of unsold listings
  MarketMetrics metrics_;
};

}  // namespace mv::nft
