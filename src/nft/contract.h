// NftContract: ERC-721-style non-fungible tokens on the ledger (§IV-A).
//
// "NFTs are a one-to-one mapping between an owner (represented by a crypto
// wallet address) and the asset referencing the NFT (usually by a URI)."
// Tokens carry a creator royalty (basis points) honoured by every marketplace
// sale, mirroring the create-to-earn model the paper describes.
//
// Methods (args ByteWriter-encoded):
//   mint(uri: str, royalty_bps: u32)       — create a token owned by caller
//   transfer(token: u64, to: u64-address)  — move a token you own
//   list(token: u64, price: u64)           — open a fixed-price listing
//   cancel(token: u64)                     — close your listing
//   buy(token: u64)                        — pay price; royalty to creator
#pragma once

#include <string>

#include "ledger/state.h"

namespace mv::nft {

class NftContract final : public ledger::Contract {
 public:
  [[nodiscard]] std::string name() const override { return "nft"; }
  [[nodiscard]] Status call(ledger::CallContext& ctx, const std::string& method,
                            const Bytes& args) const override;

  struct TokenView {
    crypto::Address owner;
    crypto::Address creator;
    std::string uri;
    std::uint32_t royalty_bps = 0;
  };

  // ---- read-side helpers ----
  [[nodiscard]] static std::uint64_t token_count(const ledger::LedgerState& state);
  [[nodiscard]] static Result<TokenView> token(const ledger::LedgerState& state,
                                               std::uint64_t id);
  /// Listing price, or 0 when not listed.
  [[nodiscard]] static std::uint64_t listing_price(const ledger::LedgerState& state,
                                                   std::uint64_t id);
  [[nodiscard]] static std::vector<std::uint64_t> tokens_of(
      const ledger::LedgerState& state, crypto::Address owner);

  // ---- argument encoders ----
  [[nodiscard]] static Bytes encode_mint(const std::string& uri,
                                         std::uint32_t royalty_bps);
  [[nodiscard]] static Bytes encode_transfer(std::uint64_t token,
                                             crypto::Address to);
  [[nodiscard]] static Bytes encode_list(std::uint64_t token, std::uint64_t price);
  [[nodiscard]] static Bytes encode_token(std::uint64_t token);

 private:
  Status do_mint(ledger::CallContext& ctx, const Bytes& args) const;
  Status do_transfer(ledger::CallContext& ctx, const Bytes& args) const;
  Status do_list(ledger::CallContext& ctx, const Bytes& args) const;
  Status do_cancel(ledger::CallContext& ctx, const Bytes& args) const;
  Status do_buy(ledger::CallContext& ctx, const Bytes& args) const;
};

}  // namespace mv::nft
