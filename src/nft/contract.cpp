#include "nft/contract.h"

namespace mv::nft {

namespace {

std::string owner_key(std::uint64_t id) { return "token/" + std::to_string(id) + "/owner"; }
std::string creator_key(std::uint64_t id) { return "token/" + std::to_string(id) + "/creator"; }
std::string uri_key(std::uint64_t id) { return "token/" + std::to_string(id) + "/uri"; }
std::string royalty_key(std::uint64_t id) { return "token/" + std::to_string(id) + "/royalty"; }
std::string listing_key(std::uint64_t id) { return "listing/" + std::to_string(id); }

Bytes enc_u64(std::uint64_t v) {
  ByteWriter w;
  w.u64(v);
  return w.take();
}
Bytes enc_u32(std::uint32_t v) {
  ByteWriter w;
  w.u32(v);
  return w.take();
}
Bytes enc_str(const std::string& s) {
  ByteWriter w;
  w.str(s);
  return w.take();
}

std::uint64_t dec_u64(const Bytes* b, std::uint64_t fallback = 0) {
  if (b == nullptr) return fallback;
  ByteReader r(*b);
  auto v = r.u64();
  return v.ok() ? v.value() : fallback;
}
std::uint32_t dec_u32(const Bytes* b, std::uint32_t fallback = 0) {
  if (b == nullptr) return fallback;
  ByteReader r(*b);
  auto v = r.u32();
  return v.ok() ? v.value() : fallback;
}

constexpr std::uint32_t kMaxRoyaltyBps = 5000;  // 50% cap

}  // namespace

Status NftContract::call(ledger::CallContext& ctx, const std::string& method,
                         const Bytes& args) const {
  if (method == "mint") return do_mint(ctx, args);
  if (method == "transfer") return do_transfer(ctx, args);
  if (method == "list") return do_list(ctx, args);
  if (method == "cancel") return do_cancel(ctx, args);
  if (method == "buy") return do_buy(ctx, args);
  return Status::fail(errc::kNftUnknownMethod, method);
}

Status NftContract::do_mint(ledger::CallContext& ctx, const Bytes& args) const {
  ByteReader r(args);
  auto uri = r.str();
  auto royalty = r.u32();
  if (!uri.ok() || !royalty.ok()) {
    return Status::fail(errc::kNftBadArgs, "mint(uri: str, royalty_bps: u32)");
  }
  if (royalty.value() > kMaxRoyaltyBps) {
    return Status::fail(errc::kNftRoyaltyTooHigh, "royalty above 50%");
  }
  const std::uint64_t id = dec_u64(ctx.get("next_token"));
  ctx.put("next_token", enc_u64(id + 1));
  ctx.put(owner_key(id), enc_u64(ctx.caller().value));
  ctx.put(creator_key(id), enc_u64(ctx.caller().value));
  ctx.put(uri_key(id), enc_str(uri.value()));
  ctx.put(royalty_key(id), enc_u32(royalty.value()));
  return {};
}

Status NftContract::do_transfer(ledger::CallContext& ctx, const Bytes& args) const {
  ByteReader r(args);
  auto token = r.u64();
  auto to = r.u64();
  if (!token.ok() || !to.ok() || to.value() == 0) {
    return Status::fail(errc::kNftBadArgs, "transfer(token: u64, to: address)");
  }
  const Bytes* owner = ctx.get(owner_key(token.value()));
  if (owner == nullptr) return Status::fail(errc::kNftNoSuchToken, "unknown token");
  if (dec_u64(owner) != ctx.caller().value) {
    return Status::fail(errc::kNftNotOwner, "caller does not own the token");
  }
  if (ctx.get(listing_key(token.value())) != nullptr) {
    return Status::fail(errc::kNftListed, "cancel the listing before transferring");
  }
  ctx.put(owner_key(token.value()), enc_u64(to.value()));
  return {};
}

Status NftContract::do_list(ledger::CallContext& ctx, const Bytes& args) const {
  ByteReader r(args);
  auto token = r.u64();
  auto price = r.u64();
  if (!token.ok() || !price.ok() || price.value() == 0) {
    return Status::fail(errc::kNftBadArgs, "list(token: u64, price: u64 > 0)");
  }
  const Bytes* owner = ctx.get(owner_key(token.value()));
  if (owner == nullptr) return Status::fail(errc::kNftNoSuchToken, "unknown token");
  if (dec_u64(owner) != ctx.caller().value) {
    return Status::fail(errc::kNftNotOwner, "caller does not own the token");
  }
  ctx.put(listing_key(token.value()), enc_u64(price.value()));
  return {};
}

Status NftContract::do_cancel(ledger::CallContext& ctx, const Bytes& args) const {
  ByteReader r(args);
  auto token = r.u64();
  if (!token.ok()) return Status::fail(errc::kNftBadArgs, "cancel(token: u64)");
  const Bytes* owner = ctx.get(owner_key(token.value()));
  if (owner == nullptr) return Status::fail(errc::kNftNoSuchToken, "unknown token");
  if (dec_u64(owner) != ctx.caller().value) {
    return Status::fail(errc::kNftNotOwner, "caller does not own the token");
  }
  if (ctx.get(listing_key(token.value())) == nullptr) {
    return Status::fail(errc::kNftNotListed, "no open listing");
  }
  ctx.erase(listing_key(token.value()));
  return {};
}

Status NftContract::do_buy(ledger::CallContext& ctx, const Bytes& args) const {
  ByteReader r(args);
  auto token = r.u64();
  if (!token.ok()) return Status::fail(errc::kNftBadArgs, "buy(token: u64)");
  const Bytes* listing = ctx.get(listing_key(token.value()));
  if (listing == nullptr) return Status::fail(errc::kNftNotListed, "no open listing");
  const std::uint64_t price = dec_u64(listing);
  const crypto::Address seller{dec_u64(ctx.get(owner_key(token.value())))};
  const crypto::Address creator{dec_u64(ctx.get(creator_key(token.value())))};
  if (seller == ctx.caller()) {
    return Status::fail(errc::kNftSelfPurchase, "cannot buy your own listing");
  }
  const std::uint32_t royalty_bps = dec_u32(ctx.get(royalty_key(token.value())));
  const std::uint64_t royalty =
      price * royalty_bps / 10000;  // creator share of every sale
  const std::uint64_t seller_cut = price - royalty;
  if (auto s = ctx.transfer(ctx.caller(), seller, seller_cut); !s.ok()) return s;
  if (royalty > 0) {
    if (auto s = ctx.transfer(ctx.caller(), creator, royalty); !s.ok()) return s;
  }
  ctx.put(owner_key(token.value()), enc_u64(ctx.caller().value));
  ctx.erase(listing_key(token.value()));
  return {};
}

std::uint64_t NftContract::token_count(const ledger::LedgerState& state) {
  const auto* store = state.find_store("nft");
  if (store == nullptr) return 0;
  const auto it = store->find("next_token");
  return it == store->end() ? 0 : dec_u64(&it->second);
}

Result<NftContract::TokenView> NftContract::token(
    const ledger::LedgerState& state, std::uint64_t id) {
  const auto* store = state.find_store("nft");
  if (store == nullptr) return make_error(errc::kNftNoStore, "no contract state");
  const auto owner = store->find(owner_key(id));
  if (owner == store->end()) return make_error(errc::kNftNoSuchToken, "unknown token");
  TokenView view;
  view.owner = crypto::Address{dec_u64(&owner->second)};
  if (const auto it = store->find(creator_key(id)); it != store->end()) {
    view.creator = crypto::Address{dec_u64(&it->second)};
  }
  if (const auto it = store->find(uri_key(id)); it != store->end()) {
    ByteReader r(it->second);
    if (auto s = r.str(); s.ok()) view.uri = s.value();
  }
  if (const auto it = store->find(royalty_key(id)); it != store->end()) {
    view.royalty_bps = dec_u32(&it->second);
  }
  return view;
}

std::uint64_t NftContract::listing_price(const ledger::LedgerState& state,
                                         std::uint64_t id) {
  const auto* store = state.find_store("nft");
  if (store == nullptr) return 0;
  const auto it = store->find(listing_key(id));
  return it == store->end() ? 0 : dec_u64(&it->second);
}

std::vector<std::uint64_t> NftContract::tokens_of(
    const ledger::LedgerState& state, crypto::Address owner) {
  std::vector<std::uint64_t> out;
  const std::uint64_t n = token_count(state);
  for (std::uint64_t id = 0; id < n; ++id) {
    auto view = token(state, id);
    if (view.ok() && view.value().owner == owner) out.push_back(id);
  }
  return out;
}

Bytes NftContract::encode_mint(const std::string& uri, std::uint32_t royalty_bps) {
  ByteWriter w;
  w.str(uri);
  w.u32(royalty_bps);
  return w.take();
}

Bytes NftContract::encode_transfer(std::uint64_t token, crypto::Address to) {
  ByteWriter w;
  w.u64(token);
  w.u64(to.value);
  return w.take();
}

Bytes NftContract::encode_list(std::uint64_t token, std::uint64_t price) {
  ByteWriter w;
  w.u64(token);
  w.u64(price);
  return w.take();
}

Bytes NftContract::encode_token(std::uint64_t token) {
  ByteWriter w;
  w.u64(token);
  return w.take();
}

}  // namespace mv::nft
