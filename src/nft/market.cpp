#include "nft/market.h"

#include <algorithm>

namespace mv::nft {

namespace {
// Buyer account ids live above creator ids in the reputation system.
constexpr std::uint64_t kBuyerIdBase = 1'000'000;
// Honest creators occasionally catch a mistaken report.
constexpr double kFalseReportProbability = 0.01;
}  // namespace

const char* to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kOpen: return "open";
    case AdmissionPolicy::kInviteOnly: return "invite-only";
    case AdmissionPolicy::kReputationGated: return "reputation-gated";
  }
  return "?";
}

MarketSim::MarketSim(MarketConfig config, AdmissionPolicy policy, Rng rng)
    : config_(config), policy_(policy), rng_(rng) {
  reputation::ReputationConfig rep_config;
  rep_config.age_ramp = 1;       // market epochs, not wall ticks
  rep_config.pair_cooldown = 1;  // one report per buyer-creator pair per round
  reputation_ = reputation::ReputationSystem(rep_config);

  creators_.reserve(config_.creators);
  for (std::size_t i = 0; i < config_.creators; ++i) {
    Creator c;
    c.id = AccountId(i);
    c.scammer = rng_.chance(config_.scammer_fraction);
    c.quality = c.scammer ? rng_.uniform(0.0, 0.3) : rng_.uniform(0.3, 1.0);
    creators_.push_back(c);
    (void)reputation_.register_account(c.id, 0, /*stake=*/10.0);
  }
  for (std::size_t b = 0; b < config_.buyers; ++b) {
    (void)reputation_.register_account(AccountId(kBuyerIdBase + b), 0,
                                       /*stake=*/10.0);
  }
}

void MarketSim::admit_creators() {
  switch (policy_) {
    case AdmissionPolicy::kOpen:
    case AdmissionPolicy::kReputationGated:
      for (auto& c : creators_) c.admitted = true;
      break;
    case AdmissionPolicy::kInviteOnly: {
      // Invites go to vetted (mostly honest) creators, but there are only
      // invite_fraction x N of them — the long tail stays outside.
      const auto invites = static_cast<std::size_t>(
          config_.invite_fraction * static_cast<double>(creators_.size()));
      std::vector<std::size_t> honest_pool, scam_pool;
      for (std::size_t i = 0; i < creators_.size(); ++i) {
        (creators_[i].scammer ? scam_pool : honest_pool).push_back(i);
      }
      rng_.shuffle(honest_pool);
      rng_.shuffle(scam_pool);
      std::size_t hi = 0, si = 0;
      for (std::size_t k = 0; k < invites; ++k) {
        const bool pick_honest = rng_.chance(config_.invite_honest_accuracy);
        if (pick_honest && hi < honest_pool.size()) {
          creators_[honest_pool[hi++]].admitted = true;
        } else if (si < scam_pool.size()) {
          creators_[scam_pool[si++]].admitted = true;
        } else if (hi < honest_pool.size()) {
          creators_[honest_pool[hi++]].admitted = true;
        }
      }
      break;
    }
  }
  for (const auto& c : creators_) {
    if (!c.scammer) {
      ++metrics_.honest_creators;
      if (c.admitted) ++metrics_.honest_admitted;
    }
  }
}

void MarketSim::mint_round() {
  for (std::size_t i = 0; i < creators_.size(); ++i) {
    Creator& c = creators_[i];
    if (!c.admitted || c.delisted) continue;
    for (std::size_t m = 0; m < config_.mints_per_creator_round; ++m) {
      Item item;
      item.creator_index = i;
      item.scam = c.scammer && rng_.chance(0.85);
      item.quality = item.scam ? rng_.uniform(0.0, 0.2)
                               : std::clamp(c.quality + rng_.normal(0.0, 0.1), 0.0, 1.0);
      open_items_.push_back(items_.size());
      items_.push_back(item);
    }
  }
}

void MarketSim::purchase_round(Tick now) {
  const auto purchases = static_cast<std::size_t>(
      static_cast<double>(config_.buyers) * config_.purchases_per_buyer_round);
  for (std::size_t p = 0; p < purchases && !open_items_.empty(); ++p) {
    const std::size_t slot = rng_.next_below(open_items_.size());
    const std::size_t item_index = open_items_[slot];
    Item& item = items_[item_index];
    Creator& creator = creators_[item.creator_index];

    if (creator.delisted) {
      // Delisted creators' inventory is withdrawn from the market.
      open_items_[slot] = open_items_.back();
      open_items_.pop_back();
      continue;
    }
    if (item.scam && rng_.chance(config_.pre_purchase_detection)) {
      continue;  // community labelling saved this buyer; item stays listed
    }

    item.sold = true;
    open_items_[slot] = open_items_.back();
    open_items_.pop_back();
    ++metrics_.total_sales;
    if (creator.sales == 0 && !creator.scammer) ++metrics_.honest_with_sales;
    ++creator.sales;

    const AccountId buyer(kBuyerIdBase + rng_.next_below(config_.buyers));
    if (item.scam) {
      ++metrics_.scam_sales;
      if (rng_.chance(config_.report_probability)) {
        (void)reputation_.report(buyer, creator.id, 1.0, now);
      }
    } else if (rng_.chance(kFalseReportProbability)) {
      (void)reputation_.report(buyer, creator.id, 0.3, now);
    }
  }

  if (policy_ == AdmissionPolicy::kReputationGated) {
    for (auto& c : creators_) {
      if (c.admitted && !c.delisted &&
          reputation_.score(c.id) < config_.delist_threshold) {
        c.delisted = true;
        if (c.scammer) ++metrics_.scammers_delisted;
      }
    }
  }
}

MarketMetrics MarketSim::run() {
  admit_creators();
  Tick now = 10;  // accounts registered at 0 are aged by the first round
  for (std::size_t round = 0; round < config_.rounds; ++round) {
    mint_round();
    purchase_round(now);
    now += 10;
  }
  return metrics_;
}

}  // namespace mv::nft
