// Incremental Merkle map: an ordered map from 64-bit keys to 32-byte value
// digests that maintains a Merkle commitment to its full contents.
//
// The commitment is defined purely on the key set (shape-independent, like
// rippled's SHAMap): a subtree spanning a nibble prefix hashes to
//   - the all-zero digest when it holds no keys,
//   - leaf_hash(key, value) when it holds exactly one key (at any depth),
//   - sha256(0x01 || present-children bitmap || child digests) otherwise,
// with children partitioned by the next most-significant nibble of the key.
//
// The in-memory tree caches every subtree digest and re-hashes only dirtied
// paths, so after m point updates the next root() costs O(m · log n) hashing
// instead of O(n). root_with() computes the root of "this map plus a delta"
// without mutating the map at all — the ledger state overlay uses it to
// commit to a block's post-state in O(touched · log n).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "crypto/sha256.h"

namespace mv::crypto {

class MerkleMap {
 public:
  /// Overlay delta: key -> new value digest, or nullopt to erase the key.
  using Delta = std::map<std::uint64_t, std::optional<Digest>>;

  MerkleMap();
  ~MerkleMap();
  MerkleMap(const MerkleMap& other);
  MerkleMap& operator=(const MerkleMap& other);
  MerkleMap(MerkleMap&&) noexcept;
  MerkleMap& operator=(MerkleMap&&) noexcept;

  /// Insert or update. O(log n) pointer work; hashing is deferred to root().
  void put(std::uint64_t key, const Digest& value);
  /// Remove a key (no-op when absent).
  void erase(std::uint64_t key);
  [[nodiscard]] bool contains(std::uint64_t key) const;
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Commitment to the current contents; the empty map commits to all-zero.
  /// Lazily re-hashes dirty paths: O(dirty · log n), O(1) when clean.
  [[nodiscard]] Digest root() const;

  /// Root of this map with `delta` applied on top, without mutating the map.
  /// O(|delta| · log n) hashing against the cached tree.
  [[nodiscard]] Digest root_with(const Delta& delta) const;

  /// Number of keys after applying `delta` (erases of absent keys ignored).
  [[nodiscard]] std::size_t size_with(const Delta& delta) const;

  /// Leaf commitment; exposed so oracles can reproduce the format.
  [[nodiscard]] static Digest leaf_hash(std::uint64_t key, const Digest& value);

  struct Node;  ///< opaque; defined in merkle_map.cpp

 private:
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

/// Reference oracle: the canonical root of a key->value-digest set, computed
/// by direct structural recursion with no caching or tree reuse. Input pairs
/// need not be sorted; keys must be unique. Differential tests compare this
/// against MerkleMap's incrementally maintained root.
[[nodiscard]] Digest merkle_map_reference_root(
    std::vector<std::pair<std::uint64_t, Digest>> leaves);

}  // namespace mv::crypto
