// Incremental Merkle map: an ordered map from 64-bit keys to 32-byte value
// digests that maintains a Merkle commitment to its full contents.
//
// The commitment is defined purely on the key set (shape-independent, like
// rippled's SHAMap): a subtree spanning a nibble prefix hashes to
//   - the all-zero digest when it holds no keys,
//   - leaf_hash(key, value) when it holds exactly one key (at any depth),
//   - sha256(0x01 || present-children bitmap || child digests) otherwise,
// with children partitioned by the next most-significant nibble of the key.
//
// The in-memory tree caches every subtree digest and re-hashes only dirtied
// paths, so after m point updates the next root() costs O(m · log n) hashing
// instead of O(n). root_with() computes the root of "this map plus a delta"
// without mutating the map at all — the ledger state overlay uses it to
// commit to a block's post-state in O(touched · log n).
//
// prove(key) produces a compact inclusion proof — the present-children
// bitmap and sibling digests of every inner node on the key's nibble path —
// or a non-membership proof for an absent key (the path terminated by either
// an empty child slot or the single colliding leaf). The static verify()
// replays the path against a bare 32-byte root with no tree in hand; the
// byte layout is specified in DESIGN.md §"Account proofs & light client".
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "crypto/sha256.h"

namespace mv::crypto {

/// One inner node on a key's lookup path, root-first at consecutive depths.
/// `siblings` holds the digests of the present children in index order,
/// excluding the child the path descends into (when that child is present).
struct MerkleMapProofStep {
  std::uint16_t bitmap = 0;      ///< present-children bitmap
  std::vector<Digest> siblings;  ///< present child digests, index order

  [[nodiscard]] bool operator==(const MerkleMapProofStep&) const = default;
};

/// Inclusion / non-membership proof against a MerkleMap root.
///
/// Shapes (all verified by MerkleMap::verify against the claimed value):
///  - membership: `steps` only — the deepest step's missing child slot is the
///    key's leaf (an empty `steps` means the whole map is that one leaf);
///  - non-membership, absent slot: the deepest step's bitmap has no bit at
///    the key's nibble and `siblings` carries every present child;
///  - non-membership, colliding leaf: the path ends at the single leaf of a
///    different key (`terminal_key`/`terminal_value` reproduce its leaf
///    hash; the key prefix must match the lookup path);
///  - non-membership, empty map: no steps, no terminal — root is all-zero.
struct MerkleMapProof {
  std::vector<MerkleMapProofStep> steps;  ///< root-first, depths 0..n-1
  bool has_terminal_leaf = false;
  std::uint64_t terminal_key = 0;  ///< key of the colliding leaf
  Digest terminal_value{};         ///< its value digest (leaf-hash preimage)

  [[nodiscard]] bool operator==(const MerkleMapProof&) const = default;

  /// Canonical wire format (DESIGN.md). decode() is strict: it rejects
  /// unknown versions/flags, out-of-range counts, sibling counts that the
  /// bitmap cannot support, and trailing bytes — so that no byte of an
  /// encoded proof is semantically inert.
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<MerkleMapProof> decode(const Bytes& bytes);
};

class MerkleMap {
 public:
  /// Overlay delta: key -> new value digest, or nullopt to erase the key.
  using Delta = std::map<std::uint64_t, std::optional<Digest>>;

  MerkleMap();
  ~MerkleMap();
  MerkleMap(const MerkleMap& other);
  MerkleMap& operator=(const MerkleMap& other);
  MerkleMap(MerkleMap&&) noexcept;
  MerkleMap& operator=(MerkleMap&&) noexcept;

  /// Insert or update. O(log n) pointer work; hashing is deferred to root().
  void put(std::uint64_t key, const Digest& value);

  /// Bulk construction from strictly ascending (key, value-digest) pairs:
  /// the tree is built by structural recursion over the sorted span — one
  /// node allocation per node, no descents, no splits — so loading n keys
  /// costs O(n) pointer work instead of n incremental puts. Inner hashing is
  /// deferred to root() exactly as with put(). The root of the resulting map
  /// is identical to n puts of the same pairs (the commitment is defined on
  /// the key set alone). Ascending order is the caller's contract; it is
  /// assert-checked in debug builds.
  [[nodiscard]] static MerkleMap from_sorted_leaves(
      std::span<const std::pair<std::uint64_t, Digest>> leaves);
  /// Remove a key (no-op when absent).
  void erase(std::uint64_t key);
  [[nodiscard]] bool contains(std::uint64_t key) const;
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Commitment to the current contents; the empty map commits to all-zero.
  /// Lazily re-hashes dirty paths: O(dirty · log n), O(1) when clean.
  [[nodiscard]] Digest root() const;

  /// Root of this map with `delta` applied on top, without mutating the map.
  /// O(|delta| · log n) hashing against the cached tree.
  [[nodiscard]] Digest root_with(const Delta& delta) const;

  /// Number of keys after applying `delta` (erases of absent keys ignored).
  [[nodiscard]] std::size_t size_with(const Delta& delta) const;

  /// Inclusion proof for a present key, non-membership proof otherwise.
  /// O(log n); flushes dirty hash caches like root().
  [[nodiscard]] MerkleMapProof prove(std::uint64_t key) const;

  /// Verify `proof` against a bare root, with no tree in hand.
  /// `value` engaged: proves `key -> value` is in the committed map.
  /// `value` nullopt: proves `key` is absent from the committed map.
  [[nodiscard]] static bool verify(const Digest& root, std::uint64_t key,
                                   const std::optional<Digest>& value,
                                   const MerkleMapProof& proof);

  /// Leaf commitment; exposed so oracles can reproduce the format.
  [[nodiscard]] static Digest leaf_hash(std::uint64_t key, const Digest& value);

  struct Node;  ///< opaque; defined in merkle_map.cpp

 private:
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

/// Reference oracle: the canonical root of a key->value-digest set, computed
/// by direct structural recursion with no caching or tree reuse. Input pairs
/// need not be sorted; keys must be unique. Differential tests compare this
/// against MerkleMap's incrementally maintained root.
[[nodiscard]] Digest merkle_map_reference_root(
    std::vector<std::pair<std::uint64_t, Digest>> leaves);

}  // namespace mv::crypto
