// Bounded LRU set of digests: remembered verification results.
//
// Signature verification is the dominant cost on the block hot path, and the
// same transaction is verified repeatedly — at mempool admission, at block
// assembly, and again when the assembled block is validated and committed on
// every replica that already admitted it. A transaction's digest covers the
// signature bytes, so "this digest was verified" is a sound cache key: any
// tampering changes the digest and misses.
//
// The set is keyed by the digest's 64-bit prefix with a full-digest compare
// on lookup, so a prefix collision can only cause a spurious miss (the
// colliding entry is displaced on insert), never a false hit. Not
// thread-safe: callers consult and populate it from their single-threaded
// control path (ledger/parallel.cpp fans verification out but touches the
// cache only from the calling thread).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "crypto/sha256.h"

namespace mv::crypto {

class DigestLruSet {
 public:
  /// Default capacity comfortably covers several blocks' worth of pending
  /// transactions; memory is ~56 bytes per entry.
  explicit DigestLruSet(std::size_t capacity = 1u << 16)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// True when `d` is in the set; refreshes its recency on a hit.
  [[nodiscard]] bool contains_and_touch(const Digest& d) {
    const auto it = index_.find(digest_prefix64(d));
    if (it == index_.end() || *it->second != d) return false;
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }

  /// Remember `d`, evicting the least-recently-used entry at capacity. A
  /// prefix collision displaces the colliding entry (newest wins).
  void insert(const Digest& d) {
    const std::uint64_t key = digest_prefix64(d);
    if (const auto it = index_.find(key); it != index_.end()) {
      *it->second = d;
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (order_.size() >= capacity_) {
      index_.erase(digest_prefix64(order_.back()));
      order_.pop_back();
    }
    order_.push_front(d);
    index_.emplace(key, order_.begin());
  }

  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::list<Digest> order_;  ///< most recently used at the front
  std::unordered_map<std::uint64_t, std::list<Digest>::iterator> index_;
};

}  // namespace mv::crypto
