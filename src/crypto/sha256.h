// SHA-256 (FIPS 180-4). Full from-scratch implementation; used for block
// hashes, Merkle roots, transaction ids, addresses, and Schnorr challenges.
//
// The compression function is dispatched at runtime: on x86-64 CPUs with the
// SHA extensions the hardware path runs (~5-10x the scalar throughput), and
// everything else uses the portable scalar rounds. Both paths produce
// identical digests.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace mv::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  /// Finalize and return the digest.
  ///
  /// Contract: finalize() resets the object to a freshly-constructed state,
  /// so the same instance may be reused for a new, independent message.
  /// (Historically the padded tail was left in `state_`/`buffer_len_` and a
  /// subsequent update() silently hashed garbage.)
  [[nodiscard]] Digest finalize();

 private:
  void process_blocks(const std::uint8_t* data, std::size_t block_count);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

[[nodiscard]] Digest sha256(std::span<const std::uint8_t> data);
[[nodiscard]] Digest sha256(std::string_view data);

/// Messages of at most this many bytes fit one padded compression block, so
/// they take the single-compression fast path in sha256() and are eligible
/// for sha256_short_batch().
inline constexpr std::size_t kSha256ShortMax = 55;

/// One independent message for sha256_short_batch(). `len <= kSha256ShortMax`.
struct ShortInput {
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;
};

/// Hash many independent short messages: out[i] = sha256({msgs[i].data,
/// msgs[i].len}). On CPUs with the SHA extensions, pairs of messages are
/// compressed in interleaved lanes to hide the per-block latency chain of
/// sha256rnds2 (the serial one-shot path is latency-bound, not
/// throughput-bound); elsewhere this degrades to a loop over sha256().
/// Bulk leaf hashing (snapshot install, MerkleMap::from_sorted_leaves) is
/// the intended caller. `out` must hold msgs.size() digests.
void sha256_short_batch(std::span<const ShortInput> msgs, Digest* out);

/// Hash two independent messages of any length: out_a = sha256(a), out_b =
/// sha256(b). On CPUs with the SHA extensions the two compressions run in
/// interleaved lanes while both messages still have blocks left (maximally
/// effective on equal-length inputs, e.g. snapshot chunks); the remainder —
/// and every non-x86 path — falls back to the serial one-shot.
void sha256_pair(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
                 Digest& out_a, Digest& out_b);

/// Streams the ByteWriter wire format (common/bytes.h) straight into a
/// SHA-256 state. digest() equals sha256(w.data()) for a ByteWriter `w` fed
/// the same sequence of calls, without materializing the intermediate buffer
/// — canonical digests of large structures (ledger state roots) stay O(1)
/// in memory.
class HashWriter {
 public:
  void u8(std::uint8_t v) { append(&v, 1); }
  void u32(std::uint32_t v) {
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    append(b, 4);
  }
  void u64(std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    append(b, 8);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(std::string_view v) {
    u32(static_cast<std::uint32_t>(v.size()));
    append(reinterpret_cast<const std::uint8_t*>(v.data()), v.size());
  }
  void bytes(std::span<const std::uint8_t> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    append(v.data(), v.size());
  }
  /// Raw append without a length prefix (for fixed-size digests).
  void raw(std::span<const std::uint8_t> v) { append(v.data(), v.size()); }

  /// Finalize. Resets the underlying stream (same contract as Sha256).
  [[nodiscard]] Digest digest() {
    if (!flushed_ && stage_len_ <= kSha256ShortMax) {
      // Whole message still staged and short: one-shot fast path (sha256()
      // compresses a single padded block), skipping the streaming machinery.
      const Digest d =
          sha256(std::span<const std::uint8_t>(stage_.data(), stage_len_));
      stage_len_ = 0;
      return d;
    }
    flush();
    flushed_ = false;
    return hash_.finalize();
  }

 private:
  // Small fields are staged and fed to the compressor in multi-block spans;
  // per-field update() calls would otherwise dominate large serializations.
  static constexpr std::size_t kStageSize = 1024;  // multiple of the 64B block

  void append(const std::uint8_t* p, std::size_t n) {
    if (n == 0) return;  // empty spans may carry a null pointer (UB in memcpy)
    if (n > kStageSize - stage_len_) {
      flush();
      if (n >= kStageSize) {
        hash_.update(std::span<const std::uint8_t>(p, n));
        flushed_ = true;
        return;
      }
    }
    std::memcpy(stage_.data() + stage_len_, p, n);
    stage_len_ += n;
  }
  void flush() {
    if (stage_len_ > 0) {
      hash_.update(std::span<const std::uint8_t>(stage_.data(), stage_len_));
      stage_len_ = 0;
      flushed_ = true;
    }
  }

  Sha256 hash_;
  bool flushed_ = false;  ///< hash_ has consumed bytes of the current message
  std::size_t stage_len_ = 0;
  std::array<std::uint8_t, kStageSize> stage_;
};

/// First 8 bytes of a digest as u64 (little-endian) — compact ids.
[[nodiscard]] std::uint64_t digest_prefix64(const Digest& d);

[[nodiscard]] std::string to_hex(const Digest& d);

}  // namespace mv::crypto
