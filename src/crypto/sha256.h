// SHA-256 (FIPS 180-4). Full from-scratch implementation; used for block
// hashes, Merkle roots, transaction ids, addresses, and Schnorr challenges.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace mv::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  /// Finalize and return the digest. The object must not be reused afterwards.
  [[nodiscard]] Digest finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

[[nodiscard]] Digest sha256(std::span<const std::uint8_t> data);
[[nodiscard]] Digest sha256(std::string_view data);

/// First 8 bytes of a digest as u64 (little-endian) — compact ids.
[[nodiscard]] std::uint64_t digest_prefix64(const Digest& d);

[[nodiscard]] std::string to_hex(const Digest& d);

}  // namespace mv::crypto
