#include "crypto/schnorr.h"

#include "common/bytes.h"

namespace mv::crypto {

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mul_mod(result, base, m);
    base = mul_mod(base, base, m);
    exp >>= 1;
  }
  return result;
}

namespace {

/// Challenge hash: H(r || message) reduced mod q, never zero.
std::uint64_t challenge(std::uint64_t r, std::span<const std::uint8_t> message) {
  ByteWriter w;
  w.u64(r);
  w.bytes(message);
  const Digest d = sha256(w.data());
  const std::uint64_t e = digest_prefix64(d) % kGroupQ;
  return e == 0 ? 1 : e;
}

}  // namespace

KeyPair generate_keypair(Rng& rng) {
  KeyPair kp;
  kp.priv.x = 1 + rng.next_below(kGroupQ - 1);
  kp.pub.y = pow_mod(kGenerator, kp.priv.x, kFieldP);
  return kp;
}

Signature sign(const PrivateKey& priv, std::span<const std::uint8_t> message,
               Rng& rng) {
  const std::uint64_t k = 1 + rng.next_below(kGroupQ - 1);
  const std::uint64_t r = pow_mod(kGenerator, k, kFieldP);
  Signature sig;
  sig.e = challenge(r, message);
  // s = (k - x*e) mod q
  const std::uint64_t xe = mul_mod(priv.x % kGroupQ, sig.e, kGroupQ);
  sig.s = (k + kGroupQ - xe) % kGroupQ;
  return sig;
}

bool verify(const PublicKey& pub, std::span<const std::uint8_t> message,
            const Signature& sig) {
  if (pub.y == 0 || sig.e == 0 || sig.e >= kGroupQ || sig.s >= kGroupQ) {
    return false;
  }
  // r' = g^s * y^e mod p
  const std::uint64_t gs = pow_mod(kGenerator, sig.s, kFieldP);
  const std::uint64_t ye = pow_mod(pub.y, sig.e, kFieldP);
  const std::uint64_t r = mul_mod(gs, ye, kFieldP);
  return challenge(r, message) == sig.e;
}

}  // namespace mv::crypto
