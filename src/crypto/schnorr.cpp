#include "crypto/schnorr.h"

#include <bit>

#include "common/bytes.h"

namespace mv::crypto {

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  // Fast path for the field modulus: p = 2^61 - 1 is Mersenne, so reduction
  // is two shift-and-add folds instead of a 128/64 division. This dominates
  // signature verification (pow_mod is ~128 of these per verify).
  if (m == kFieldP && a < m && b < m) {
    const unsigned __int128 t = static_cast<unsigned __int128>(a) * b;
    std::uint64_t r = (static_cast<std::uint64_t>(t) & kFieldP) +
                      static_cast<std::uint64_t>(t >> 61);
    r = (r & kFieldP) + (r >> 61);
    return r >= kFieldP ? r - kFieldP : r;
  }
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mul_mod(result, base, m);
    exp >>= 1;
    if (exp > 0) base = mul_mod(base, base, m);
  }
  return result;
}

namespace {

/// Challenge hash: H(r || message) reduced mod q, never zero. Streamed into
/// the hash (HashWriter emits the same bytes a ByteWriter would).
std::uint64_t challenge(std::uint64_t r, std::span<const std::uint8_t> message) {
  HashWriter w;
  w.u64(r);
  w.bytes(message);
  const std::uint64_t e = digest_prefix64(w.digest()) % kGroupQ;
  return e == 0 ? 1 : e;
}

/// g^s * y^e mod p by interleaved (Shamir) double exponentiation: one shared
/// squaring chain instead of two independent pow_mod walks.
std::uint64_t double_pow_mod(std::uint64_t g, std::uint64_t s, std::uint64_t y,
                             std::uint64_t e) {
  const std::uint64_t gy = mul_mod(g, y, kFieldP);
  std::uint64_t acc = 1;
  const std::uint64_t both = s | e;
  if (both == 0) return acc;
  for (int i = 63 - std::countl_zero(both); i >= 0; --i) {
    acc = mul_mod(acc, acc, kFieldP);
    const bool bs = (s >> i) & 1;
    const bool be = (e >> i) & 1;
    if (bs && be) {
      acc = mul_mod(acc, gy, kFieldP);
    } else if (bs) {
      acc = mul_mod(acc, g, kFieldP);
    } else if (be) {
      acc = mul_mod(acc, y, kFieldP);
    }
  }
  return acc;
}

}  // namespace

KeyPair generate_keypair(Rng& rng) {
  KeyPair kp;
  kp.priv.x = 1 + rng.next_below(kGroupQ - 1);
  kp.pub.y = pow_mod(kGenerator, kp.priv.x, kFieldP);
  return kp;
}

Signature sign(const PrivateKey& priv, std::span<const std::uint8_t> message,
               Rng& rng) {
  const std::uint64_t k = 1 + rng.next_below(kGroupQ - 1);
  const std::uint64_t r = pow_mod(kGenerator, k, kFieldP);
  Signature sig;
  sig.e = challenge(r, message);
  // s = (k - x*e) mod q
  const std::uint64_t xe = mul_mod(priv.x % kGroupQ, sig.e, kGroupQ);
  sig.s = (k + kGroupQ - xe) % kGroupQ;
  return sig;
}

bool verify(const PublicKey& pub, std::span<const std::uint8_t> message,
            const Signature& sig) {
  if (pub.y == 0 || sig.e == 0 || sig.e >= kGroupQ || sig.s >= kGroupQ) {
    return false;
  }
  // r' = g^s * y^e mod p
  const std::uint64_t r =
      double_pow_mod(kGenerator, sig.s, pub.y % kFieldP, sig.e);
  return challenge(r, message) == sig.e;
}

}  // namespace mv::crypto
