// Toy Schnorr signatures over Z_p^* with p = 2^61 - 1.
//
// SUBSTITUTION NOTE (DESIGN.md §4): the paper assumes a production blockchain
// with real public-key cryptography. The governance and audit experiments
// depend on signatures being *bindable and checkable*, not on cryptographic
// hardness, so we implement the genuine Schnorr signature equations over a
// deliberately small prime field (61-bit Mersenne prime, generator 3).
// This is mathematically a Schnorr scheme — key generation, signing, and
// verification follow the real algebra — but the field is far too small to be
// secure. DO NOT use outside simulation.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "crypto/sha256.h"

namespace mv::crypto {

/// Field modulus p = 2^61 - 1 (Mersenne prime) and group order q = p - 1.
inline constexpr std::uint64_t kFieldP = (1ULL << 61) - 1;
inline constexpr std::uint64_t kGroupQ = kFieldP - 1;
inline constexpr std::uint64_t kGenerator = 3;

[[nodiscard]] std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b,
                                    std::uint64_t m);
[[nodiscard]] std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp,
                                    std::uint64_t m);

struct PublicKey {
  std::uint64_t y = 0;  ///< g^x mod p

  friend constexpr auto operator<=>(PublicKey, PublicKey) = default;
};

struct PrivateKey {
  std::uint64_t x = 0;  ///< in [1, q-1]
};

struct KeyPair {
  PrivateKey priv;
  PublicKey pub;
};

struct Signature {
  std::uint64_t e = 0;  ///< challenge = H(r || m) mod q
  std::uint64_t s = 0;  ///< response  = (k - x*e) mod q
};

/// Sample a fresh keypair.
[[nodiscard]] KeyPair generate_keypair(Rng& rng);

/// Schnorr sign: k <- rand, r = g^k, e = H(r||m) mod q, s = k - x*e mod q.
[[nodiscard]] Signature sign(const PrivateKey& priv,
                             std::span<const std::uint8_t> message, Rng& rng);

/// Verify: r' = g^s * y^e mod p, accept iff H(r'||m) mod q == e.
[[nodiscard]] bool verify(const PublicKey& pub,
                          std::span<const std::uint8_t> message,
                          const Signature& sig);

}  // namespace mv::crypto
