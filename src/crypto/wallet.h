// Wallets: keypair + address. An address is the 64-bit SHA-256 prefix of the
// public key — the identity that owns accounts, NFTs, votes, and reputation
// on the ledger.
#pragma once

#include <string>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/rng.h"
#include "crypto/schnorr.h"

namespace mv::crypto {

/// On-chain identity derived from a public key.
struct Address {
  std::uint64_t value = 0;

  friend constexpr auto operator<=>(Address, Address) = default;
  [[nodiscard]] bool valid() const { return value != 0; }
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] Address address_of(const PublicKey& pub);

class Wallet {
 public:
  /// Create a wallet with a fresh keypair.
  explicit Wallet(Rng& rng);

  [[nodiscard]] const PublicKey& public_key() const { return keys_.pub; }
  [[nodiscard]] Address address() const { return address_; }

  /// Sign arbitrary bytes with the wallet's private key.
  [[nodiscard]] Signature sign(std::span<const std::uint8_t> message, Rng& rng) const;

 private:
  KeyPair keys_;
  Address address_;
};

}  // namespace mv::crypto

namespace std {
template <>
struct hash<mv::crypto::Address> {
  size_t operator()(mv::crypto::Address a) const noexcept {
    return std::hash<uint64_t>{}(a.value);
  }
};
}  // namespace std
