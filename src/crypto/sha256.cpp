#include "crypto/sha256.h"

#include <algorithm>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define MV_SHA256_X86_DISPATCH 1
#include <cpuid.h>
#include <immintrin.h>
#else
#define MV_SHA256_X86_DISPATCH 0
#endif

namespace mv::crypto {

namespace {

constexpr std::array<std::uint32_t, 8> kInitState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

void process_blocks_scalar(std::array<std::uint32_t, 8>& state,
                           const std::uint8_t* data, std::size_t block_count) {
  for (std::size_t blk = 0; blk < block_count; ++blk, data += 64) {
    std::array<std::uint32_t, 64> w{};
    for (std::size_t i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(data[i * 4]) << 24) |
             (static_cast<std::uint32_t>(data[i * 4 + 1]) << 16) |
             (static_cast<std::uint32_t>(data[i * 4 + 2]) << 8) |
             static_cast<std::uint32_t>(data[i * 4 + 3]);
    }
    for (std::size_t i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    auto [a, b, c, d, e, f, g, h] = state;
    for (std::size_t i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#if MV_SHA256_X86_DISPATCH

// Hardware compression via the x86 SHA extensions. Round constants are the
// same kK values packed two-per-lane for _mm_sha256rnds2_epu32, which
// executes two rounds per instruction.
__attribute__((target("sha,sse4.1,ssse3"))) void process_blocks_shani(
    std::array<std::uint32_t, 8>& state, const std::uint8_t* data,
    std::size_t block_count) {
  __m128i state0, state1, msg, tmp;
  __m128i msg0, msg1, msg2, msg3;

  const __m128i shuf_mask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Repack {a,b,c,d|e,f,g,h} into the {ABEF|CDGH} layout the instructions use.
  tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  state0 = _mm_alignr_epi8(tmp, state1, 8);
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);

  while (block_count > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    // Rounds 0-3
    msg = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    msg0 = _mm_shuffle_epi8(msg, shuf_mask);
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0xE9B5DBA5B5C0FBCFLL, 0x71374491428A2F98LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7
    msg1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    msg1 = _mm_shuffle_epi8(msg1, shuf_mask);
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0xAB1C5ED5923F82A4LL, 0x59F111F13956C25BLL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11
    msg2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    msg2 = _mm_shuffle_epi8(msg2, shuf_mask);
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0x550C7DC3243185BELL, 0x12835B01D807AA98LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15
    msg3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    msg3 = _mm_shuffle_epi8(msg3, shuf_mask);
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0xC19BF1749BDC06A7LL, 0x80DEB1FE72BE5D74LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-19
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0x240CA1CC0FC19DC6LL, 0xEFBE4786E49B69C1LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20-23
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0x76F988DA5CB0A9DCLL, 0x4A7484AA2DE92C6FLL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24-27
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0xBF597FC7B00327C8LL, 0xA831C66D983E5152LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28-31
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0x1429296706CA6351LL, 0xD5A79147C6E00BF3LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32-35
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0x53380D134D2C6DFCLL, 0x2E1B213827B70A85LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36-39
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0x92722C8581C2C92ELL, 0x766A0ABB650A7354LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40-43
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0xC76C51A3C24B8B70LL, 0xA81A664BA2BFE8A1LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44-47
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0x106AA070F40E3585LL, 0xD6990624D192E819LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48-51
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0x34B0BCB52748774CLL, 0x1E376C0819A4C116LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0x682E6FF35B9CCA4FLL, 0x4ED8AA4A391C0CB3LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0x8CC7020884C87814LL, 0x78A5636F748F82EELL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0xC67178F2BEF9A3F7LL, 0xA4506CEB90BEFFFALL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);

    data += 64;
    --block_count;
  }

  // Repack {ABEF|CDGH} back to {a,b,c,d|e,f,g,h}.
  tmp = _mm_shuffle_epi32(state0, 0x1B);
  state1 = _mm_shuffle_epi32(state1, 0xB1);
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

// Two independent single-block compressions with interleaved lanes. The
// sha256rnds2 dependency chain bounds a single block at ~4 cycles per two
// rounds; a second independent lane fills those latency slots nearly for
// free, so hashing pairs of short messages roughly halves the per-digest
// cost. Message schedule uses the rolling 4-word formulation:
//   W[i..i+3] = msg2(msg1(W[i-16..], W[i-12..]) + alignr(W[i-4..], W[i-8..]),
//               W[i-4..])
__attribute__((target("sha,sse4.1,ssse3"))) void process_block2_shani(
    std::array<std::uint32_t, 8>& state_a, const std::uint8_t* block_a,
    std::array<std::uint32_t, 8>& state_b, const std::uint8_t* block_b,
    std::size_t block_count) {
  const __m128i shuf_mask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Repack {a,b,c,d|e,f,g,h} into {ABEF|CDGH} for both lanes.
  __m128i ta = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state_a[0]));
  __m128i s1a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state_a[4]));
  ta = _mm_shuffle_epi32(ta, 0xB1);
  s1a = _mm_shuffle_epi32(s1a, 0x1B);
  __m128i s0a = _mm_alignr_epi8(ta, s1a, 8);
  s1a = _mm_blend_epi16(s1a, ta, 0xF0);
  __m128i tb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state_b[0]));
  __m128i s1b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state_b[4]));
  tb = _mm_shuffle_epi32(tb, 0xB1);
  s1b = _mm_shuffle_epi32(s1b, 0x1B);
  __m128i s0b = _mm_alignr_epi8(tb, s1b, 8);
  s1b = _mm_blend_epi16(s1b, tb, 0xF0);

  while (block_count > 0) {
    const __m128i save0a = s0a, save1a = s1a, save0b = s0b, save1b = s1b;

    __m128i ma[4], mb[4];
    for (int i = 0; i < 4; ++i) {
      ma[i] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(block_a + 16 * i)),
          shuf_mask);
      mb[i] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(block_b + 16 * i)),
          shuf_mask);
    }

    for (int r = 0; r < 16; ++r) {
      const __m128i k =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4 * r]));
      __m128i wka = _mm_add_epi32(ma[0], k);
      __m128i wkb = _mm_add_epi32(mb[0], k);
      s1a = _mm_sha256rnds2_epu32(s1a, s0a, wka);
      s1b = _mm_sha256rnds2_epu32(s1b, s0b, wkb);
      wka = _mm_shuffle_epi32(wka, 0x0E);
      wkb = _mm_shuffle_epi32(wkb, 0x0E);
      s0a = _mm_sha256rnds2_epu32(s0a, s1a, wka);
      s0b = _mm_sha256rnds2_epu32(s0b, s1b, wkb);
      if (r < 12) {
        __m128i na = _mm_add_epi32(_mm_sha256msg1_epu32(ma[0], ma[1]),
                                   _mm_alignr_epi8(ma[3], ma[2], 4));
        na = _mm_sha256msg2_epu32(na, ma[3]);
        __m128i nb = _mm_add_epi32(_mm_sha256msg1_epu32(mb[0], mb[1]),
                                   _mm_alignr_epi8(mb[3], mb[2], 4));
        nb = _mm_sha256msg2_epu32(nb, mb[3]);
        ma[0] = ma[1]; ma[1] = ma[2]; ma[2] = ma[3]; ma[3] = na;
        mb[0] = mb[1]; mb[1] = mb[2]; mb[2] = mb[3]; mb[3] = nb;
      } else {
        ma[0] = ma[1]; ma[1] = ma[2]; ma[2] = ma[3];
        mb[0] = mb[1]; mb[1] = mb[2]; mb[2] = mb[3];
      }
    }

    s0a = _mm_add_epi32(s0a, save0a);
    s1a = _mm_add_epi32(s1a, save1a);
    s0b = _mm_add_epi32(s0b, save0b);
    s1b = _mm_add_epi32(s1b, save1b);

    block_a += 64;
    block_b += 64;
    --block_count;
  }

  // Repack {ABEF|CDGH} back to {a,b,c,d|e,f,g,h}.
  ta = _mm_shuffle_epi32(s0a, 0x1B);
  s1a = _mm_shuffle_epi32(s1a, 0xB1);
  s0a = _mm_blend_epi16(ta, s1a, 0xF0);
  s1a = _mm_alignr_epi8(s1a, ta, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state_a[0]), s0a);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state_a[4]), s1a);
  tb = _mm_shuffle_epi32(s0b, 0x1B);
  s1b = _mm_shuffle_epi32(s1b, 0xB1);
  s0b = _mm_blend_epi16(tb, s1b, 0xF0);
  s1b = _mm_alignr_epi8(s1b, tb, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state_b[0]), s0b);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state_b[4]), s1b);
}

bool cpu_has_sha_extensions() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_max(0, nullptr) < 7) return false;
  __cpuid_count(7, 0, eax, ebx, ecx, edx);
  const bool sha = (ebx & (1u << 29)) != 0;
  __cpuid(1, eax, ebx, ecx, edx);
  const bool sse41 = (ecx & (1u << 19)) != 0;
  const bool ssse3 = (ecx & (1u << 9)) != 0;
  return sha && sse41 && ssse3;
}

#endif  // MV_SHA256_X86_DISPATCH

using CompressFn = void (*)(std::array<std::uint32_t, 8>&, const std::uint8_t*,
                            std::size_t);

CompressFn resolve_compress() {
#if MV_SHA256_X86_DISPATCH
  if (cpu_has_sha_extensions()) return &process_blocks_shani;
#endif
  return &process_blocks_scalar;
}

const CompressFn kCompress = resolve_compress();

/// Pad a message of <= 55 bytes into one compression block: 0x80, zeros,
/// then the 64-bit big-endian bit length (FIPS 180-4 §5.1.1).
void pad_short_block(const std::uint8_t* data, std::size_t len,
                     std::uint8_t block[64]) {
  if (len > 0) std::memcpy(block, data, len);  // empty spans may carry null
  block[len] = 0x80;
  std::memset(block + len + 1, 0, 55 - len);
  const std::uint64_t bits = static_cast<std::uint64_t>(len) * 8;
  for (int i = 0; i < 8; ++i) {
    block[56 + i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
}

Digest state_to_digest(const std::array<std::uint32_t, 8>& state) {
  Digest out{};
  for (std::size_t i = 0; i < 8; ++i) {
    out[i * 4 + 0] = static_cast<std::uint8_t>(state[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state[i]);
  }
  return out;
}

/// One-shot hash of a message that fits a single padded block: no streaming
/// buffer round trips, one compression call.
Digest sha256_short(const std::uint8_t* data, std::size_t len) {
  std::uint8_t block[64];
  pad_short_block(data, len, block);
  std::array<std::uint32_t, 8> state = kInitState;
  kCompress(state, block, 1);
  return state_to_digest(state);
}

/// Finish one lane of a paired hash: the lane's full blocks past the
/// interleaved prefix, then its padded tail (FIPS 180-4 §5.1.1).
void finish_lane(std::array<std::uint32_t, 8>& state,
                 std::span<const std::uint8_t> msg, std::size_t blocks_done) {
  const std::size_t full = msg.size() / 64;
  if (full > blocks_done) {
    kCompress(state, msg.data() + blocks_done * 64, full - blocks_done);
  }
  const std::size_t tail = msg.size() - full * 64;
  std::uint8_t block[128];
  if (tail > 0) std::memcpy(block, msg.data() + full * 64, tail);
  block[tail] = 0x80;
  const std::size_t blocks = (tail >= 56) ? 2 : 1;
  std::memset(block + tail + 1, 0, blocks * 64 - 8 - (tail + 1));
  const std::uint64_t bits = static_cast<std::uint64_t>(msg.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    block[blocks * 64 - 8 + i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  kCompress(state, block, blocks);
}

}  // namespace

Sha256::Sha256() : state_(kInitState) {}

void Sha256::update(std::string_view data) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

void Sha256::update(std::span<const std::uint8_t> data) {
  if (data.empty()) return;  // empty spans may carry a null pointer
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == buffer_.size()) {
      process_blocks(buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  const std::size_t full_blocks = (data.size() - offset) / 64;
  if (full_blocks > 0) {
    process_blocks(data.data() + offset, full_blocks);
    offset += full_blocks * 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Digest Sha256::finalize() {
  // Append 0x80, pad with zeros to 56 mod 64, append the 64-bit big-endian
  // bit length, then compress the tail in place.
  const std::uint64_t bits = total_bits_;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_.data() + buffer_len_, 0, buffer_.size() - buffer_len_);
    process_blocks(buffer_.data(), 1);
    buffer_len_ = 0;
  }
  std::memset(buffer_.data() + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[static_cast<std::size_t>(56 + i)] =
        static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  process_blocks(buffer_.data(), 1);

  Digest out{};
  for (std::size_t i = 0; i < 8; ++i) {
    out[i * 4 + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  // Reset so the instance can hash a fresh message (see header contract).
  state_ = kInitState;
  buffer_len_ = 0;
  total_bits_ = 0;
  return out;
}

void Sha256::process_blocks(const std::uint8_t* data, std::size_t block_count) {
  kCompress(state_, data, block_count);
}

Digest sha256(std::span<const std::uint8_t> data) {
  if (data.size() <= kSha256ShortMax) {
    return sha256_short(data.data(), data.size());
  }
  Sha256 h;
  h.update(data);
  return h.finalize();
}

void sha256_short_batch(std::span<const ShortInput> msgs, Digest* out) {
  std::size_t i = 0;
#if MV_SHA256_X86_DISPATCH
  if (kCompress == &process_blocks_shani) {
    std::uint8_t block_a[64];
    std::uint8_t block_b[64];
    for (; i + 1 < msgs.size(); i += 2) {
      pad_short_block(msgs[i].data, msgs[i].len, block_a);
      pad_short_block(msgs[i + 1].data, msgs[i + 1].len, block_b);
      std::array<std::uint32_t, 8> state_a = kInitState;
      std::array<std::uint32_t, 8> state_b = kInitState;
      process_block2_shani(state_a, block_a, state_b, block_b, 1);
      out[i] = state_to_digest(state_a);
      out[i + 1] = state_to_digest(state_b);
    }
  }
#endif
  for (; i < msgs.size(); ++i) {
    out[i] = sha256_short(msgs[i].data, msgs[i].len);
  }
}

void sha256_pair(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
                 Digest& out_a, Digest& out_b) {
#if MV_SHA256_X86_DISPATCH
  if (kCompress == &process_blocks_shani) {
    std::array<std::uint32_t, 8> state_a = kInitState;
    std::array<std::uint32_t, 8> state_b = kInitState;
    const std::size_t both = std::min(a.size() / 64, b.size() / 64);
    if (both > 0) {
      process_block2_shani(state_a, a.data(), state_b, b.data(), both);
    }
    finish_lane(state_a, a, both);
    finish_lane(state_b, b, both);
    out_a = state_to_digest(state_a);
    out_b = state_to_digest(state_b);
    return;
  }
#endif
  out_a = sha256(a);
  out_b = sha256(b);
}

Digest sha256(std::string_view data) {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

std::uint64_t digest_prefix64(const Digest& d) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(d[static_cast<std::size_t>(i)]) << (8 * i);
  return v;
}

std::string to_hex(const Digest& d) {
  return mv::to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

}  // namespace mv::crypto
