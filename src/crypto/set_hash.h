// Order-independent incremental multiset hash (AdHash-style).
//
// The digest of a multiset is the lane-wise sum, mod 2^64 per lane, of the
// SHA-256 digests of its elements, so inserting or removing one element is
// O(1) regardless of set size. The ledger uses it for per-contract-store
// section digests, where entries are updated in place and a Merkle structure
// per store would be overkill.
//
// Security note: additive combination is weaker than a Merkle tree (finding
// a colliding multiset reduces to a generalized-birthday / lattice problem,
// not to a SHA-256 collision). Acceptable here for the same reason the toy
// Schnorr field is: the simulated chain's claims need integrity bookkeeping,
// not production-grade cryptographic hardness (DESIGN.md §"Production
// blockchain").
#pragma once

#include <array>
#include <cstdint>

#include "crypto/sha256.h"

namespace mv::crypto {

class SetHash {
 public:
  void add(const Digest& d) {
    for (int lane = 0; lane < 4; ++lane) lanes_[lane] += load_lane(d, lane);
  }
  void remove(const Digest& d) {
    for (int lane = 0; lane < 4; ++lane) lanes_[lane] -= load_lane(d, lane);
  }

  /// Serialized accumulator (little-endian lanes); the empty set is all-zero.
  [[nodiscard]] std::array<std::uint8_t, 32> bytes() const {
    std::array<std::uint8_t, 32> out{};
    for (int lane = 0; lane < 4; ++lane) {
      for (int i = 0; i < 8; ++i) {
        out[lane * 8 + i] = static_cast<std::uint8_t>(lanes_[lane] >> (8 * i));
      }
    }
    return out;
  }

  [[nodiscard]] bool operator==(const SetHash&) const = default;

 private:
  static std::uint64_t load_lane(const Digest& d, int lane) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | d[lane * 8 + i];
    return v;
  }

  std::array<std::uint64_t, 4> lanes_{};
};

}  // namespace mv::crypto
