#include "crypto/wallet.h"

#include <sstream>

namespace mv::crypto {

std::string Address::to_string() const {
  std::ostringstream os;
  os << "0x" << std::hex << value;
  return os.str();
}

Address address_of(const PublicKey& pub) {
  ByteWriter w;
  w.u64(pub.y);
  const Digest d = sha256(w.data());
  std::uint64_t v = digest_prefix64(d);
  if (v == 0) v = 1;  // reserve 0 as the null address
  return Address{v};
}

Wallet::Wallet(Rng& rng) : keys_(generate_keypair(rng)), address_(address_of(keys_.pub)) {}

Signature Wallet::sign(std::span<const std::uint8_t> message, Rng& rng) const {
  return crypto::sign(keys_.priv, message, rng);
}

}  // namespace mv::crypto
