// Merkle trees over SHA-256.
//
// Block bodies commit to their transaction set via a Merkle root; audit
// clients verify inclusion of a single data-collection record with a
// logarithmic proof (DESIGN.md E7).
#pragma once

#include <cstddef>
#include <vector>

#include "crypto/sha256.h"

namespace mv::crypto {

struct MerkleStep {
  Digest sibling;
  bool sibling_on_left = false;
};

using MerkleProof = std::vector<MerkleStep>;

class MerkleTree {
 public:
  /// Build from leaf digests. An empty tree has the all-zero root.
  explicit MerkleTree(std::vector<Digest> leaves);

  [[nodiscard]] const Digest& root() const { return root_; }
  [[nodiscard]] std::size_t leaf_count() const { return leaves_; }

  /// Inclusion proof for leaf `index`.
  [[nodiscard]] MerkleProof prove(std::size_t index) const;

  /// Verify that `leaf` at some position hashes up to `root` via `proof`.
  [[nodiscard]] static bool verify(const Digest& leaf, const MerkleProof& proof,
                                   const Digest& root);

  /// Hash two children into a parent (domain-separated from leaf hashing).
  [[nodiscard]] static Digest parent(const Digest& left, const Digest& right);

 private:
  std::size_t leaves_ = 0;
  std::vector<std::vector<Digest>> levels_;  // levels_[0] = leaves
  Digest root_{};
};

}  // namespace mv::crypto
