#include "crypto/merkle.h"

#include <stdexcept>

namespace mv::crypto {

Digest MerkleTree::parent(const Digest& left, const Digest& right) {
  Sha256 h;
  const std::uint8_t domain = 0x01;  // interior-node domain separator
  h.update(std::span<const std::uint8_t>(&domain, 1));
  h.update(std::span<const std::uint8_t>(left.data(), left.size()));
  h.update(std::span<const std::uint8_t>(right.data(), right.size()));
  return h.finalize();
}

MerkleTree::MerkleTree(std::vector<Digest> leaves) : leaves_(leaves.size()) {
  if (leaves.empty()) {
    root_ = Digest{};
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& below = levels_.back();
    std::vector<Digest> level;
    level.reserve((below.size() + 1) / 2);
    for (std::size_t i = 0; i < below.size(); i += 2) {
      // Odd node pairs with itself (Bitcoin-style duplication).
      const Digest& left = below[i];
      const Digest& right = (i + 1 < below.size()) ? below[i + 1] : below[i];
      level.push_back(parent(left, right));
    }
    levels_.push_back(std::move(level));
  }
  root_ = levels_.back().front();
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  if (index >= leaves_) throw std::out_of_range("MerkleTree::prove: bad index");
  MerkleProof proof;
  std::size_t i = index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    MerkleStep step;
    step.sibling_on_left = (i % 2 == 1);
    step.sibling = sibling < nodes.size() ? nodes[sibling] : nodes[i];
    proof.push_back(step);
    i /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& leaf, const MerkleProof& proof,
                        const Digest& root) {
  Digest acc = leaf;
  for (const auto& step : proof) {
    acc = step.sibling_on_left ? parent(step.sibling, acc)
                               : parent(acc, step.sibling);
  }
  return acc == root;
}

}  // namespace mv::crypto
