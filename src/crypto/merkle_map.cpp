#include "crypto/merkle_map.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <span>

namespace mv::crypto {

namespace {

/// Most-significant-nibble-first path through the key, depth 0..15.
unsigned nibble(std::uint64_t key, int depth) {
  return static_cast<unsigned>((key >> (60 - 4 * depth)) & 0xF);
}

}  // namespace

struct MerkleMap::Node {
  bool leaf = true;
  std::uint64_t key = 0;  ///< leaf only
  Digest value{};         ///< leaf only: value digest (leaf-hash preimage,
                          ///< kept so proofs can expose colliding leaves)
  /// Leaf: exact leaf_hash (always fresh). Inner: cached subtree digest,
  /// valid when !dirty. Mutable so a const tree can flush its cache.
  mutable Digest hash{};
  mutable bool dirty = false;  ///< inner only
  std::uint32_t count = 1;     ///< keys in this subtree
  /// Children, allocated for inner nodes only (keeps leaves small).
  std::unique_ptr<std::array<std::unique_ptr<Node>, 16>> kids;
};

namespace {

using Node = MerkleMap::Node;
using NodePtr = std::unique_ptr<Node>;

NodePtr make_leaf(std::uint64_t key, const Digest& value, const Digest& leaf_hash) {
  auto n = std::make_unique<Node>();
  n->key = key;
  n->value = value;
  n->hash = leaf_hash;
  return n;
}

NodePtr make_inner() {
  auto n = std::make_unique<Node>();
  n->leaf = false;
  n->dirty = true;
  n->count = 0;
  n->kids = std::make_unique<std::array<NodePtr, 16>>();
  return n;
}

NodePtr clone(const Node* n) {
  if (n == nullptr) return nullptr;
  auto c = std::make_unique<Node>();
  c->leaf = n->leaf;
  c->key = n->key;
  c->value = n->value;
  c->hash = n->hash;
  c->dirty = n->dirty;
  c->count = n->count;
  if (n->kids) {
    c->kids = std::make_unique<std::array<NodePtr, 16>>();
    for (int i = 0; i < 16; ++i) (*c->kids)[i] = clone((*n->kids)[i].get());
  }
  return c;
}

/// Combine child digests into an inner commitment. `present` marks non-empty
/// children; their digests appear in index order after a 16-bit bitmap.
Digest inner_hash(const std::array<const Digest*, 16>& children) {
  HashWriter w;
  w.u8(0x01);
  std::uint32_t bitmap = 0;
  for (int i = 0; i < 16; ++i) {
    if (children[i] != nullptr) bitmap |= 1u << i;
  }
  w.u8(static_cast<std::uint8_t>(bitmap));
  w.u8(static_cast<std::uint8_t>(bitmap >> 8));
  for (int i = 0; i < 16; ++i) {
    if (children[i] != nullptr) w.raw(*children[i]);
  }
  return w.digest();
}

/// Re-hash a dirty subtree bottom-up. After this, every node's cached hash
/// equals its canonical commitment (a count-1 subtree commits as its single
/// leaf, regardless of how many inner nodes physically wrap it).
void ensure(const Node* n) {
  if (n->leaf || !n->dirty) return;
  const Node* single = nullptr;
  std::array<const Digest*, 16> children{};
  for (int i = 0; i < 16; ++i) {
    const Node* kid = (*n->kids)[i].get();
    if (kid == nullptr) continue;
    ensure(kid);
    children[i] = &kid->hash;
    single = kid;
  }
  n->hash = (n->count == 1) ? single->hash : inner_hash(children);
  n->dirty = false;
}

/// Either an update (leaf hash) or a tombstone, pre-hashed from a Delta.
struct DeltaEntry {
  std::uint64_t key = 0;
  std::optional<Digest> leaf;  ///< nullopt = erase
};

/// Canonical commitment of an explicit (key, leaf_hash) set at `depth`.
/// `leaves` must be sorted by key and unique. Shared by the virtual-merge
/// path (collision regions) and the reference oracle.
Digest build_from_leaves(int depth,
                         std::span<const std::pair<std::uint64_t, Digest>> leaves) {
  if (leaves.empty()) return Digest{};
  if (leaves.size() == 1) return leaves[0].second;
  assert(depth < 16);
  std::array<Digest, 16> slots;
  std::array<const Digest*, 16> children{};
  std::size_t i = 0;
  for (unsigned nib = 0; nib < 16 && i < leaves.size(); ++nib) {
    std::size_t j = i;
    while (j < leaves.size() && nibble(leaves[j].first, depth) == nib) ++j;
    if (j > i) {
      slots[nib] = build_from_leaves(depth + 1, leaves.subspan(i, j - i));
      children[nib] = &slots[nib];
      i = j;
    }
  }
  return inner_hash(children);
}

struct MergeResult {
  Digest digest{};
  std::size_t count = 0;
};

/// Commitment of (subtree at `node`) ⊕ (delta `entries`), computed without
/// touching the tree. Cached hashes must be fresh (root() flushed) before
/// the top-level call.
MergeResult merge(const Node* node, int depth, std::span<const DeltaEntry> entries) {
  if (entries.empty()) {
    if (node == nullptr) return {};
    return {node->hash, node->leaf ? 1u : node->count};
  }
  if (node == nullptr || node->leaf) {
    // Materialize the merged leaf set: the node's leaf (unless overridden by
    // a delta entry with the same key) plus every delta insert. Collision
    // regions are small — at most |delta| + 1 leaves — so building them
    // explicitly keeps this path simple without hurting the O(touched·log n)
    // bound.
    std::vector<std::pair<std::uint64_t, Digest>> leaves;
    leaves.reserve(entries.size() + 1);
    bool node_pending = node != nullptr;
    for (const auto& e : entries) {
      if (node_pending && node->key <= e.key) {
        if (node->key < e.key) leaves.emplace_back(node->key, node->hash);
        node_pending = false;  // equal key: delta overrides the base leaf
        if (node->key == e.key && !e.leaf.has_value()) continue;
      }
      if (e.leaf.has_value()) leaves.emplace_back(e.key, *e.leaf);
    }
    if (node_pending) leaves.emplace_back(node->key, node->hash);
    return {build_from_leaves(depth, leaves), leaves.size()};
  }
  // Inner node: partition the (sorted) delta by this depth's nibble and
  // recurse; untouched children contribute their cached digest for free.
  std::array<Digest, 16> slots;
  std::array<const Digest*, 16> children{};
  std::size_t total = 0;
  const Digest* single = nullptr;
  std::size_t i = 0;
  for (unsigned nib = 0; nib < 16; ++nib) {
    std::size_t j = i;
    while (j < entries.size() && nibble(entries[j].key, depth) == nib) ++j;
    const MergeResult r =
        merge((*node->kids)[nib].get(), depth + 1, entries.subspan(i, j - i));
    i = j;
    if (r.count == 0) continue;
    slots[nib] = r.digest;
    children[nib] = &slots[nib];
    single = &slots[nib];
    total += r.count;
  }
  if (total == 0) return {};
  if (total == 1) return {*single, 1};
  return {inner_hash(children), total};
}

/// Build the physical subtree for a strictly ascending leaf span at `depth`.
/// Mirrors the partition loop of build_from_leaves, but materializes Nodes.
/// `leaf_hashes` runs parallel to `leaves` (precomputed in one batched pass —
/// see from_sorted_leaves). Inner hashes are computed eagerly on the way back
/// up while the children are cache-hot, so the built tree is fully clean and
/// root() afterwards is a cache read, not an O(n) deferred hash pass.
NodePtr build_nodes(int depth,
                    std::span<const std::pair<std::uint64_t, Digest>> leaves,
                    std::span<const Digest> leaf_hashes) {
  if (leaves.size() == 1) {
    return make_leaf(leaves[0].first, leaves[0].second, leaf_hashes[0]);
  }
  assert(depth < 16);
  auto inner = make_inner();
  inner->count = static_cast<std::uint32_t>(leaves.size());
  std::array<const Digest*, 16> children{};
  std::size_t i = 0;
  for (unsigned nib = 0; nib < 16 && i < leaves.size(); ++nib) {
    std::size_t j = i;
    while (j < leaves.size() && nibble(leaves[j].first, depth) == nib) ++j;
    if (j > i) {
      (*inner->kids)[nib] = build_nodes(depth + 1, leaves.subspan(i, j - i),
                                        leaf_hashes.subspan(i, j - i));
      children[nib] = &(*inner->kids)[nib]->hash;
      i = j;
    }
  }
  // leaves.size() >= 2 here, so the count-1 single-leaf rule never applies.
  inner->hash = inner_hash(children);
  inner->dirty = false;
  return inner;
}

/// Push two distinct leaves down until their paths diverge.
NodePtr split(NodePtr a, NodePtr b, int depth) {
  assert(depth < 16);
  auto inner = make_inner();
  inner->count = 2;
  const unsigned na = nibble(a->key, depth);
  const unsigned nb = nibble(b->key, depth);
  if (na == nb) {
    (*inner->kids)[na] = split(std::move(a), std::move(b), depth + 1);
  } else {
    (*inner->kids)[na] = std::move(a);
    (*inner->kids)[nb] = std::move(b);
  }
  return inner;
}

/// Returns true when a new key was added (vs updated in place).
bool insert(NodePtr& slot, int depth, std::uint64_t key, const Digest& value,
            const Digest& leaf) {
  Node* n = slot.get();
  if (n->leaf) {
    if (n->key == key) {
      n->value = value;
      n->hash = leaf;
      return false;
    }
    slot = split(std::move(slot), make_leaf(key, value, leaf), depth);
    return true;
  }
  n->dirty = true;
  NodePtr& kid = (*n->kids)[nibble(key, depth)];
  bool added = true;
  if (!kid) {
    kid = make_leaf(key, value, leaf);
  } else {
    added = insert(kid, depth + 1, key, value, leaf);
  }
  if (added) ++n->count;
  return added;
}

/// Returns true when the key was found and removed.
bool remove(NodePtr& slot, int depth, std::uint64_t key) {
  Node* n = slot.get();
  if (n->leaf) {
    if (n->key != key) return false;
    slot.reset();
    return true;
  }
  NodePtr& kid = (*n->kids)[nibble(key, depth)];
  if (!kid || !remove(kid, depth + 1, key)) return false;
  n->dirty = true;
  if (--n->count == 0) slot.reset();
  return true;
}

}  // namespace

MerkleMap::MerkleMap() = default;
MerkleMap::~MerkleMap() = default;
MerkleMap::MerkleMap(MerkleMap&&) noexcept = default;
MerkleMap& MerkleMap::operator=(MerkleMap&&) noexcept = default;

MerkleMap::MerkleMap(const MerkleMap& other)
    : root_(clone(other.root_.get())), size_(other.size_) {}

MerkleMap& MerkleMap::operator=(const MerkleMap& other) {
  if (this != &other) {
    root_ = clone(other.root_.get());
    size_ = other.size_;
  }
  return *this;
}

Digest MerkleMap::leaf_hash(std::uint64_t key, const Digest& value) {
  HashWriter w;
  w.u8(0x00);
  w.u64(key);
  w.raw(value);
  return w.digest();
}

void MerkleMap::put(std::uint64_t key, const Digest& value) {
  const Digest lh = leaf_hash(key, value);
  if (!root_) {
    root_ = make_leaf(key, value, lh);
    size_ = 1;
    return;
  }
  if (insert(root_, 0, key, value, lh)) ++size_;
}

MerkleMap MerkleMap::from_sorted_leaves(
    std::span<const std::pair<std::uint64_t, Digest>> leaves) {
#ifndef NDEBUG
  for (std::size_t i = 1; i < leaves.size(); ++i) {
    assert(leaves[i - 1].first < leaves[i].first);
  }
#endif
  MerkleMap m;
  if (leaves.empty()) return m;
  // Leaf hashes in one batched pass: the preimages (0x00 || key || value,
  // 41 bytes) all fit a single compression block, so pairs of them run in
  // interleaved SHA lanes — roughly half the cost of hashing one by one
  // inside the build recursion.
  constexpr std::size_t kPreimage = 1 + 8 + 32;
  std::vector<std::uint8_t> preimages(leaves.size() * kPreimage);
  std::vector<ShortInput> inputs(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    std::uint8_t* p = preimages.data() + i * kPreimage;
    p[0] = 0x00;
    for (int b = 0; b < 8; ++b) {
      p[1 + b] = static_cast<std::uint8_t>(leaves[i].first >> (8 * b));
    }
    std::memcpy(p + 9, leaves[i].second.data(), 32);
    inputs[i] = {p, kPreimage};
  }
  std::vector<Digest> leaf_hashes(leaves.size());
  sha256_short_batch(inputs, leaf_hashes.data());
  m.root_ = build_nodes(0, leaves, leaf_hashes);
  m.size_ = leaves.size();
  return m;
}

void MerkleMap::erase(std::uint64_t key) {
  if (root_ && remove(root_, 0, key)) --size_;
}

bool MerkleMap::contains(std::uint64_t key) const {
  const Node* n = root_.get();
  for (int depth = 0; n != nullptr; ++depth) {
    if (n->leaf) return n->key == key;
    n = (*n->kids)[nibble(key, depth)].get();
  }
  return false;
}

Digest MerkleMap::root() const {
  if (!root_) return Digest{};
  ensure(root_.get());
  return root_->hash;
}

MerkleMapProof MerkleMap::prove(std::uint64_t key) const {
  (void)root();  // flush cached hashes so every node digest is canonical
  MerkleMapProof proof;
  const Node* n = root_.get();
  int depth = 0;
  // Descend while the subtree holds >= 2 keys: each such level is an inner
  // node in the canonical commitment and contributes one proof step.
  while (n != nullptr && !n->leaf && n->count >= 2) {
    MerkleMapProofStep step;
    const unsigned nib = nibble(key, depth);
    const Node* next = nullptr;
    for (unsigned i = 0; i < 16; ++i) {
      const Node* kid = (*n->kids)[i].get();
      if (kid == nullptr) continue;
      step.bitmap |= static_cast<std::uint16_t>(1u << i);
      if (i == nib) {
        next = kid;
      } else {
        step.siblings.push_back(kid->hash);
      }
    }
    proof.steps.push_back(std::move(step));
    if (next == nullptr) return proof;  // absent slot: non-membership
    n = next;
    ++depth;
  }
  // A count-1 subtree commits as its single leaf regardless of how many
  // physical inner nodes wrap it (erase leaves such chains behind).
  while (n != nullptr && !n->leaf) {
    const Node* single = nullptr;
    for (unsigned i = 0; i < 16; ++i) {
      if (const Node* kid = (*n->kids)[i].get(); kid != nullptr) single = kid;
    }
    n = single;
  }
  if (n == nullptr || n->key == key) return proof;  // empty map / membership
  proof.has_terminal_leaf = true;  // non-membership: path ends at another key
  proof.terminal_key = n->key;
  proof.terminal_value = n->value;
  return proof;
}

namespace {

/// Recompute one inner-node digest from a proof step, substituting `ours`
/// (when given) for the child at `our_nib`. Must mirror inner_hash() byte
/// for byte.
Digest fold_step(const MerkleMapProofStep& step,
                 std::optional<unsigned> our_nib, const Digest& ours) {
  HashWriter w;
  w.u8(0x01);
  w.u8(static_cast<std::uint8_t>(step.bitmap));
  w.u8(static_cast<std::uint8_t>(step.bitmap >> 8));
  std::size_t s = 0;
  for (unsigned i = 0; i < 16; ++i) {
    if (((step.bitmap >> i) & 1u) == 0) continue;
    if (our_nib.has_value() && i == *our_nib) {
      w.raw(ours);
    } else {
      w.raw(step.siblings[s++]);
    }
  }
  return w.digest();
}

}  // namespace

bool MerkleMap::verify(const Digest& root, std::uint64_t key,
                       const std::optional<Digest>& value,
                       const MerkleMapProof& proof) {
  const std::size_t depths = proof.steps.size();
  if (depths > 16) return false;
  Digest cur{};
  std::size_t deepest = depths;  // steps [0, deepest) are folded around `cur`
  if (value.has_value()) {
    // Membership: the chain starts at the key's own leaf.
    if (proof.has_terminal_leaf) return false;
    cur = leaf_hash(key, *value);
  } else if (proof.has_terminal_leaf) {
    // Non-membership, colliding leaf: the subtree on the key's path is the
    // single leaf of a *different* key sharing the traversed prefix.
    if (proof.terminal_key == key) return false;
    for (std::size_t d = 0; d < depths; ++d) {
      if (nibble(proof.terminal_key, static_cast<int>(d)) !=
          nibble(key, static_cast<int>(d))) {
        return false;
      }
    }
    cur = leaf_hash(proof.terminal_key, proof.terminal_value);
  } else if (depths == 0) {
    // Non-membership, empty map: the all-zero digest commits to "no keys".
    return root == Digest{};
  } else {
    // Non-membership, absent slot: the deepest step has no child at the
    // key's nibble; its digest is rebuilt from all its children.
    const MerkleMapProofStep& last = proof.steps[depths - 1];
    const unsigned nib = nibble(key, static_cast<int>(depths - 1));
    if ((last.bitmap >> nib) & 1u) return false;
    if (last.bitmap == 0) return false;
    if (last.siblings.size() !=
        static_cast<std::size_t>(std::popcount(last.bitmap))) {
      return false;
    }
    cur = fold_step(last, std::nullopt, Digest{});
    deepest = depths - 1;
  }
  for (std::size_t i = deepest; i-- > 0;) {
    const MerkleMapProofStep& step = proof.steps[i];
    const unsigned nib = nibble(key, static_cast<int>(i));
    if (((step.bitmap >> nib) & 1u) == 0) return false;
    if (step.siblings.size() + 1 !=
        static_cast<std::size_t>(std::popcount(step.bitmap))) {
      return false;
    }
    cur = fold_step(step, nib, cur);
  }
  return cur == root;
}

Bytes MerkleMapProof::encode() const {
  ByteWriter w;
  w.u8(0x01);  // format version
  w.u8(has_terminal_leaf ? 0x01 : 0x00);
  w.u8(static_cast<std::uint8_t>(steps.size()));
  for (const MerkleMapProofStep& step : steps) {
    w.u8(static_cast<std::uint8_t>(step.bitmap));
    w.u8(static_cast<std::uint8_t>(step.bitmap >> 8));
    w.u8(static_cast<std::uint8_t>(step.siblings.size()));
    for (const Digest& d : step.siblings) w.raw(d);
  }
  if (has_terminal_leaf) {
    w.u64(terminal_key);
    w.raw(terminal_value);
  }
  return w.take();
}

Result<MerkleMapProof> MerkleMapProof::decode(const Bytes& bytes) {
  ByteReader r(bytes);
  const auto version = r.u8();
  if (!version.ok()) return version.error();
  if (version.value() != 0x01) {
    return make_error("proof.bad_version", "unknown proof format version");
  }
  const auto flags = r.u8();
  if (!flags.ok()) return flags.error();
  if ((flags.value() & ~0x01u) != 0) {
    return make_error("proof.bad_flags", "reserved flag bits set");
  }
  const auto step_count = r.u8();
  if (!step_count.ok()) return step_count.error();
  if (step_count.value() > 16) {
    return make_error("proof.bad_depth", "more steps than key nibbles");
  }
  MerkleMapProof proof;
  proof.steps.reserve(step_count.value());
  for (unsigned i = 0; i < step_count.value(); ++i) {
    MerkleMapProofStep step;
    const auto lo = r.u8();
    if (!lo.ok()) return lo.error();
    const auto hi = r.u8();
    if (!hi.ok()) return hi.error();
    step.bitmap = static_cast<std::uint16_t>(lo.value() |
                                             (unsigned{hi.value()} << 8));
    const auto sibling_count = r.u8();
    if (!sibling_count.ok()) return sibling_count.error();
    const unsigned present = static_cast<unsigned>(std::popcount(step.bitmap));
    // An honest step carries either every present child (terminating
    // absent-slot step) or all but the one on the path.
    if (sibling_count.value() > present ||
        sibling_count.value() + 1 < present) {
      return make_error("proof.bad_sibling_count",
                        "sibling count inconsistent with bitmap");
    }
    step.siblings.reserve(sibling_count.value());
    for (unsigned s = 0; s < sibling_count.value(); ++s) {
      auto raw = r.raw(32);
      if (!raw.ok()) return raw.error();
      Digest d;
      std::copy(raw.value().begin(), raw.value().end(), d.begin());
      step.siblings.push_back(d);
    }
    proof.steps.push_back(std::move(step));
  }
  if ((flags.value() & 0x01u) != 0) {
    proof.has_terminal_leaf = true;
    const auto key = r.u64();
    if (!key.ok()) return key.error();
    proof.terminal_key = key.value();
    auto raw = r.raw(32);
    if (!raw.ok()) return raw.error();
    std::copy(raw.value().begin(), raw.value().end(),
              proof.terminal_value.begin());
  }
  if (!r.exhausted()) {
    return make_error("proof.trailing_bytes", "proof has trailing bytes");
  }
  return proof;
}

Digest MerkleMap::root_with(const Delta& delta) const {
  if (delta.empty()) return root();
  (void)root();  // flush cached hashes so merge() can trust them
  std::vector<DeltaEntry> entries;
  entries.reserve(delta.size());
  for (const auto& [key, value] : delta) {
    entries.push_back(DeltaEntry{
        key, value.has_value() ? std::optional(leaf_hash(key, *value))
                               : std::nullopt});
  }
  return merge(root_.get(), 0, entries).digest;
}

std::size_t MerkleMap::size_with(const Delta& delta) const {
  std::size_t n = size_;
  for (const auto& [key, value] : delta) {
    const bool present = contains(key);
    if (value.has_value() && !present) ++n;
    if (!value.has_value() && present) --n;
  }
  return n;
}

Digest merkle_map_reference_root(
    std::vector<std::pair<std::uint64_t, Digest>> leaves) {
  for (auto& [key, value] : leaves) value = MerkleMap::leaf_hash(key, value);
  std::sort(leaves.begin(), leaves.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return build_from_leaves(0, leaves);
}

}  // namespace mv::crypto
