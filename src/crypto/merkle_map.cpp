#include "crypto/merkle_map.h"

#include <algorithm>
#include <cassert>
#include <span>

namespace mv::crypto {

namespace {

/// Most-significant-nibble-first path through the key, depth 0..15.
unsigned nibble(std::uint64_t key, int depth) {
  return static_cast<unsigned>((key >> (60 - 4 * depth)) & 0xF);
}

}  // namespace

struct MerkleMap::Node {
  bool leaf = true;
  std::uint64_t key = 0;  ///< leaf only
  /// Leaf: exact leaf_hash (always fresh). Inner: cached subtree digest,
  /// valid when !dirty. Mutable so a const tree can flush its cache.
  mutable Digest hash{};
  mutable bool dirty = false;  ///< inner only
  std::uint32_t count = 1;     ///< keys in this subtree
  /// Children, allocated for inner nodes only (keeps leaves small).
  std::unique_ptr<std::array<std::unique_ptr<Node>, 16>> kids;
};

namespace {

using Node = MerkleMap::Node;
using NodePtr = std::unique_ptr<Node>;

NodePtr make_leaf(std::uint64_t key, const Digest& leaf_hash) {
  auto n = std::make_unique<Node>();
  n->key = key;
  n->hash = leaf_hash;
  return n;
}

NodePtr make_inner() {
  auto n = std::make_unique<Node>();
  n->leaf = false;
  n->dirty = true;
  n->count = 0;
  n->kids = std::make_unique<std::array<NodePtr, 16>>();
  return n;
}

NodePtr clone(const Node* n) {
  if (n == nullptr) return nullptr;
  auto c = std::make_unique<Node>();
  c->leaf = n->leaf;
  c->key = n->key;
  c->hash = n->hash;
  c->dirty = n->dirty;
  c->count = n->count;
  if (n->kids) {
    c->kids = std::make_unique<std::array<NodePtr, 16>>();
    for (int i = 0; i < 16; ++i) (*c->kids)[i] = clone((*n->kids)[i].get());
  }
  return c;
}

/// Combine child digests into an inner commitment. `present` marks non-empty
/// children; their digests appear in index order after a 16-bit bitmap.
Digest inner_hash(const std::array<const Digest*, 16>& children) {
  HashWriter w;
  w.u8(0x01);
  std::uint32_t bitmap = 0;
  for (int i = 0; i < 16; ++i) {
    if (children[i] != nullptr) bitmap |= 1u << i;
  }
  w.u8(static_cast<std::uint8_t>(bitmap));
  w.u8(static_cast<std::uint8_t>(bitmap >> 8));
  for (int i = 0; i < 16; ++i) {
    if (children[i] != nullptr) w.raw(*children[i]);
  }
  return w.digest();
}

/// Re-hash a dirty subtree bottom-up. After this, every node's cached hash
/// equals its canonical commitment (a count-1 subtree commits as its single
/// leaf, regardless of how many inner nodes physically wrap it).
void ensure(const Node* n) {
  if (n->leaf || !n->dirty) return;
  const Node* single = nullptr;
  std::array<const Digest*, 16> children{};
  for (int i = 0; i < 16; ++i) {
    const Node* kid = (*n->kids)[i].get();
    if (kid == nullptr) continue;
    ensure(kid);
    children[i] = &kid->hash;
    single = kid;
  }
  n->hash = (n->count == 1) ? single->hash : inner_hash(children);
  n->dirty = false;
}

/// Either an update (leaf hash) or a tombstone, pre-hashed from a Delta.
struct DeltaEntry {
  std::uint64_t key = 0;
  std::optional<Digest> leaf;  ///< nullopt = erase
};

/// Canonical commitment of an explicit (key, leaf_hash) set at `depth`.
/// `leaves` must be sorted by key and unique. Shared by the virtual-merge
/// path (collision regions) and the reference oracle.
Digest build_from_leaves(int depth,
                         std::span<const std::pair<std::uint64_t, Digest>> leaves) {
  if (leaves.empty()) return Digest{};
  if (leaves.size() == 1) return leaves[0].second;
  assert(depth < 16);
  std::array<Digest, 16> slots;
  std::array<const Digest*, 16> children{};
  std::size_t i = 0;
  for (unsigned nib = 0; nib < 16 && i < leaves.size(); ++nib) {
    std::size_t j = i;
    while (j < leaves.size() && nibble(leaves[j].first, depth) == nib) ++j;
    if (j > i) {
      slots[nib] = build_from_leaves(depth + 1, leaves.subspan(i, j - i));
      children[nib] = &slots[nib];
      i = j;
    }
  }
  return inner_hash(children);
}

struct MergeResult {
  Digest digest{};
  std::size_t count = 0;
};

/// Commitment of (subtree at `node`) ⊕ (delta `entries`), computed without
/// touching the tree. Cached hashes must be fresh (root() flushed) before
/// the top-level call.
MergeResult merge(const Node* node, int depth, std::span<const DeltaEntry> entries) {
  if (entries.empty()) {
    if (node == nullptr) return {};
    return {node->hash, node->leaf ? 1u : node->count};
  }
  if (node == nullptr || node->leaf) {
    // Materialize the merged leaf set: the node's leaf (unless overridden by
    // a delta entry with the same key) plus every delta insert. Collision
    // regions are small — at most |delta| + 1 leaves — so building them
    // explicitly keeps this path simple without hurting the O(touched·log n)
    // bound.
    std::vector<std::pair<std::uint64_t, Digest>> leaves;
    leaves.reserve(entries.size() + 1);
    bool node_pending = node != nullptr;
    for (const auto& e : entries) {
      if (node_pending && node->key <= e.key) {
        if (node->key < e.key) leaves.emplace_back(node->key, node->hash);
        node_pending = false;  // equal key: delta overrides the base leaf
        if (node->key == e.key && !e.leaf.has_value()) continue;
      }
      if (e.leaf.has_value()) leaves.emplace_back(e.key, *e.leaf);
    }
    if (node_pending) leaves.emplace_back(node->key, node->hash);
    return {build_from_leaves(depth, leaves), leaves.size()};
  }
  // Inner node: partition the (sorted) delta by this depth's nibble and
  // recurse; untouched children contribute their cached digest for free.
  std::array<Digest, 16> slots;
  std::array<const Digest*, 16> children{};
  std::size_t total = 0;
  const Digest* single = nullptr;
  std::size_t i = 0;
  for (unsigned nib = 0; nib < 16; ++nib) {
    std::size_t j = i;
    while (j < entries.size() && nibble(entries[j].key, depth) == nib) ++j;
    const MergeResult r =
        merge((*node->kids)[nib].get(), depth + 1, entries.subspan(i, j - i));
    i = j;
    if (r.count == 0) continue;
    slots[nib] = r.digest;
    children[nib] = &slots[nib];
    single = &slots[nib];
    total += r.count;
  }
  if (total == 0) return {};
  if (total == 1) return {*single, 1};
  return {inner_hash(children), total};
}

/// Push two distinct leaves down until their paths diverge.
NodePtr split(NodePtr a, NodePtr b, int depth) {
  assert(depth < 16);
  auto inner = make_inner();
  inner->count = 2;
  const unsigned na = nibble(a->key, depth);
  const unsigned nb = nibble(b->key, depth);
  if (na == nb) {
    (*inner->kids)[na] = split(std::move(a), std::move(b), depth + 1);
  } else {
    (*inner->kids)[na] = std::move(a);
    (*inner->kids)[nb] = std::move(b);
  }
  return inner;
}

/// Returns true when a new key was added (vs updated in place).
bool insert(NodePtr& slot, int depth, std::uint64_t key, const Digest& leaf) {
  Node* n = slot.get();
  if (n->leaf) {
    if (n->key == key) {
      n->hash = leaf;
      return false;
    }
    slot = split(std::move(slot), make_leaf(key, leaf), depth);
    return true;
  }
  n->dirty = true;
  NodePtr& kid = (*n->kids)[nibble(key, depth)];
  bool added = true;
  if (!kid) {
    kid = make_leaf(key, leaf);
  } else {
    added = insert(kid, depth + 1, key, leaf);
  }
  if (added) ++n->count;
  return added;
}

/// Returns true when the key was found and removed.
bool remove(NodePtr& slot, int depth, std::uint64_t key) {
  Node* n = slot.get();
  if (n->leaf) {
    if (n->key != key) return false;
    slot.reset();
    return true;
  }
  NodePtr& kid = (*n->kids)[nibble(key, depth)];
  if (!kid || !remove(kid, depth + 1, key)) return false;
  n->dirty = true;
  if (--n->count == 0) slot.reset();
  return true;
}

}  // namespace

MerkleMap::MerkleMap() = default;
MerkleMap::~MerkleMap() = default;
MerkleMap::MerkleMap(MerkleMap&&) noexcept = default;
MerkleMap& MerkleMap::operator=(MerkleMap&&) noexcept = default;

MerkleMap::MerkleMap(const MerkleMap& other)
    : root_(clone(other.root_.get())), size_(other.size_) {}

MerkleMap& MerkleMap::operator=(const MerkleMap& other) {
  if (this != &other) {
    root_ = clone(other.root_.get());
    size_ = other.size_;
  }
  return *this;
}

Digest MerkleMap::leaf_hash(std::uint64_t key, const Digest& value) {
  HashWriter w;
  w.u8(0x00);
  w.u64(key);
  w.raw(value);
  return w.digest();
}

void MerkleMap::put(std::uint64_t key, const Digest& value) {
  const Digest lh = leaf_hash(key, value);
  if (!root_) {
    root_ = make_leaf(key, lh);
    size_ = 1;
    return;
  }
  if (insert(root_, 0, key, lh)) ++size_;
}

void MerkleMap::erase(std::uint64_t key) {
  if (root_ && remove(root_, 0, key)) --size_;
}

bool MerkleMap::contains(std::uint64_t key) const {
  const Node* n = root_.get();
  for (int depth = 0; n != nullptr; ++depth) {
    if (n->leaf) return n->key == key;
    n = (*n->kids)[nibble(key, depth)].get();
  }
  return false;
}

Digest MerkleMap::root() const {
  if (!root_) return Digest{};
  ensure(root_.get());
  return root_->hash;
}

Digest MerkleMap::root_with(const Delta& delta) const {
  if (delta.empty()) return root();
  (void)root();  // flush cached hashes so merge() can trust them
  std::vector<DeltaEntry> entries;
  entries.reserve(delta.size());
  for (const auto& [key, value] : delta) {
    entries.push_back(DeltaEntry{
        key, value.has_value() ? std::optional(leaf_hash(key, *value))
                               : std::nullopt});
  }
  return merge(root_.get(), 0, entries).digest;
}

std::size_t MerkleMap::size_with(const Delta& delta) const {
  std::size_t n = size_;
  for (const auto& [key, value] : delta) {
    const bool present = contains(key);
    if (value.has_value() && !present) ++n;
    if (!value.has_value() && present) --n;
  }
  return n;
}

Digest merkle_map_reference_root(
    std::vector<std::pair<std::uint64_t, Digest>> leaves) {
  for (auto& [key, value] : leaves) value = MerkleMap::leaf_hash(key, value);
  std::sort(leaves.begin(), leaves.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return build_from_leaves(0, leaves);
}

}  // namespace mv::crypto
