// Epidemic (push-gossip) dissemination over the simulated network.
//
// Decentralized metaverse platforms propagate blocks, transactions, and
// governance announcements by gossip rather than central fan-out. Each node
// relays a newly seen rumor to `fanout` random peers; duplicates are dropped
// by digest.
//
// Relaying is backpressured: each node tracks how many of its relays are
// still in flight (sent but not yet delivered) and stops relaying past a
// high-water mark, so a slow or high-latency mesh bounds its queue instead
// of amplifying every rumor into an unbounded burst. Withheld relays are
// surfaced in NetworkStats::backpressure_dropped.
//
// Sharded worlds (ledger/shard.h) don't need every node to carry every
// world's traffic: a node may declare the shard ids it is interested in at
// join time, and rumors published with a shard tag are routed only through
// the interested subset — uninterested nodes never receive (let alone relay)
// them. Untagged rumors and interest-less nodes behave exactly as before.
#pragma once

#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/job_queue.h"
#include "crypto/sha256.h"
#include "net/network.h"

namespace mv::net {

class Gossip {
 public:
  /// Called exactly once per node per rumor, at first reception.
  using DeliverFn = std::function<void(NodeId node, const Bytes& payload)>;

  /// `relay_high_water` bounds each node's in-flight relays; 0 disables
  /// backpressure. When `queue` is set, each relay fan-out runs as a
  /// JobClass::kGossipRelay job on it instead of inline: a shed job withholds
  /// that hop entirely (visible in JobQueueStats, the mesh's redundancy
  /// covers the gap) and fan-outs may run concurrently with the simulation
  /// thread. Queued relay jobs reference this Gossip: drain() the queue (or
  /// destroy it, which abandons them) before destroying the Gossip.
  Gossip(Network& network, Rng rng, std::size_t fanout, DeliverFn deliver,
         std::size_t relay_high_water = 64, JobQueue* queue = nullptr);

  /// Register this gossip instance as the message handler of a fresh node.
  NodeId join();

  /// Join with an explicit shard interest set: the node receives and relays
  /// only rumors tagged with one of `interests` (plus all untagged rumors).
  /// An empty set is equivalent to join() — interested in everything.
  NodeId join(std::vector<std::uint32_t> interests);

  /// Originate a rumor at `origin`; it is delivered locally then relayed.
  void publish(NodeId origin, const Bytes& payload);

  /// Originate a shard-tagged rumor: it travels only through nodes
  /// interested in `shard` and is delivered with the tag stripped.
  void publish(NodeId origin, std::uint32_t shard, const Bytes& payload);

  /// Fraction of joined nodes that have seen a given payload.
  [[nodiscard]] double coverage(const Bytes& payload) const;

  /// Fraction of the nodes *interested in `shard`* that have seen a tagged
  /// payload — uninterested nodes are not part of the denominator because
  /// routing keeps the rumor away from them by design.
  [[nodiscard]] double coverage(std::uint32_t shard, const Bytes& payload) const;

  [[nodiscard]] std::size_t member_count() const { return members_.size(); }

  /// Relays from `node` currently in flight (sent, not yet delivered).
  [[nodiscard]] std::size_t inflight(NodeId node) const {
    std::lock_guard<std::mutex> lock(relay_mu_);
    const auto it = inflight_.find(node);
    return it == inflight_.end() ? 0 : it->second;
  }

 private:
  void on_message(const Message& msg);
  /// Forward a rumor to up to `fanout` peers — inline, or as a kGossipRelay
  /// job when a queue is configured. The buffer is shared, not copied: every
  /// hop of a rumor reuses the original sender's bytes. `shard`, when set,
  /// restricts the candidate peers to the interested subset and routes the
  /// rumor on the "gossip.shard" topic.
  void relay(NodeId from, const std::shared_ptr<const Bytes>& payload,
             std::optional<std::uint32_t> shard);
  /// The fan-out itself (peer sampling + backpressured sends). Runs on the
  /// simulation thread or a queue worker; relay_mu_ serializes either way.
  void relay_now(NodeId from, const std::shared_ptr<const Bytes>& payload,
                 std::optional<std::uint32_t> shard);
  /// First-seen bookkeeping; true when `node` had not seen the rumor yet.
  bool mark_seen(NodeId node, const Bytes& payload);
  /// Whether `node` accepts rumors tagged with `shard` (no interest set or
  /// empty set = accepts everything).
  [[nodiscard]] bool interested(NodeId node, std::uint32_t shard) const;

  Network& network_;
  /// Guards rng_ and inflight_: queue workers run relay_now while the
  /// simulation thread decrements in-flight counts at delivery. seen_ and
  /// members_ stay simulation-thread-only (join/publish/on_message).
  mutable std::mutex relay_mu_;
  Rng rng_;
  std::size_t fanout_;
  DeliverFn deliver_;
  std::size_t relay_high_water_;
  JobQueue* queue_;
  std::vector<NodeId> members_;
  /// Shard interest per node; absent or empty = interested in everything.
  /// Populated at join time (before traffic), read-only afterwards — safe to
  /// read from queue workers for the same reason members_ is.
  std::unordered_map<NodeId, std::unordered_set<std::uint32_t>> interests_;
  std::unordered_map<std::uint64_t, std::unordered_set<NodeId>> seen_;
  std::unordered_map<NodeId, std::size_t> inflight_;
};

}  // namespace mv::net
