// Epidemic (push-gossip) dissemination over the simulated network.
//
// Decentralized metaverse platforms propagate blocks, transactions, and
// governance announcements by gossip rather than central fan-out. Each node
// relays a newly seen rumor to `fanout` random peers; duplicates are dropped
// by digest.
//
// Relaying is backpressured: each node tracks how many of its relays are
// still in flight (sent but not yet delivered) and stops relaying past a
// high-water mark, so a slow or high-latency mesh bounds its queue instead
// of amplifying every rumor into an unbounded burst. Withheld relays are
// surfaced in NetworkStats::backpressure_dropped.
#pragma once

#include <functional>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/job_queue.h"
#include "crypto/sha256.h"
#include "net/network.h"

namespace mv::net {

class Gossip {
 public:
  /// Called exactly once per node per rumor, at first reception.
  using DeliverFn = std::function<void(NodeId node, const Bytes& payload)>;

  /// `relay_high_water` bounds each node's in-flight relays; 0 disables
  /// backpressure. When `queue` is set, each relay fan-out runs as a
  /// JobClass::kGossipRelay job on it instead of inline: a shed job withholds
  /// that hop entirely (visible in JobQueueStats, the mesh's redundancy
  /// covers the gap) and fan-outs may run concurrently with the simulation
  /// thread. Queued relay jobs reference this Gossip: drain() the queue (or
  /// destroy it, which abandons them) before destroying the Gossip.
  Gossip(Network& network, Rng rng, std::size_t fanout, DeliverFn deliver,
         std::size_t relay_high_water = 64, JobQueue* queue = nullptr);

  /// Register this gossip instance as the message handler of a fresh node.
  NodeId join();

  /// Originate a rumor at `origin`; it is delivered locally then relayed.
  void publish(NodeId origin, const Bytes& payload);

  /// Fraction of joined nodes that have seen a given payload.
  [[nodiscard]] double coverage(const Bytes& payload) const;

  [[nodiscard]] std::size_t member_count() const { return members_.size(); }

  /// Relays from `node` currently in flight (sent, not yet delivered).
  [[nodiscard]] std::size_t inflight(NodeId node) const {
    std::lock_guard<std::mutex> lock(relay_mu_);
    const auto it = inflight_.find(node);
    return it == inflight_.end() ? 0 : it->second;
  }

 private:
  void on_message(const Message& msg);
  /// Forward a rumor to up to `fanout` peers — inline, or as a kGossipRelay
  /// job when a queue is configured. The buffer is shared, not copied: every
  /// hop of a rumor reuses the original sender's bytes.
  void relay(NodeId from, const std::shared_ptr<const Bytes>& payload);
  /// The fan-out itself (peer sampling + backpressured sends). Runs on the
  /// simulation thread or a queue worker; relay_mu_ serializes either way.
  void relay_now(NodeId from, const std::shared_ptr<const Bytes>& payload);
  /// First-seen bookkeeping; true when `node` had not seen the rumor yet.
  bool mark_seen(NodeId node, const Bytes& payload);

  Network& network_;
  /// Guards rng_ and inflight_: queue workers run relay_now while the
  /// simulation thread decrements in-flight counts at delivery. seen_ and
  /// members_ stay simulation-thread-only (join/publish/on_message).
  mutable std::mutex relay_mu_;
  Rng rng_;
  std::size_t fanout_;
  DeliverFn deliver_;
  std::size_t relay_high_water_;
  JobQueue* queue_;
  std::vector<NodeId> members_;
  std::unordered_map<std::uint64_t, std::unordered_set<NodeId>> seen_;
  std::unordered_map<NodeId, std::size_t> inflight_;
};

}  // namespace mv::net
