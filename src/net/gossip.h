// Epidemic (push-gossip) dissemination over the simulated network.
//
// Decentralized metaverse platforms propagate blocks, transactions, and
// governance announcements by gossip rather than central fan-out. Each node
// relays a newly seen rumor to `fanout` random peers; duplicates are dropped
// by digest.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "crypto/sha256.h"
#include "net/network.h"

namespace mv::net {

class Gossip {
 public:
  /// Called exactly once per node per rumor, at first reception.
  using DeliverFn = std::function<void(NodeId node, const Bytes& payload)>;

  Gossip(Network& network, Rng rng, std::size_t fanout, DeliverFn deliver);

  /// Register this gossip instance as the message handler of a fresh node.
  NodeId join();

  /// Originate a rumor at `origin`; it is delivered locally then relayed.
  void publish(NodeId origin, const Bytes& payload);

  /// Fraction of joined nodes that have seen a given payload.
  [[nodiscard]] double coverage(const Bytes& payload) const;

  [[nodiscard]] std::size_t member_count() const { return members_.size(); }

 private:
  void on_message(const Message& msg);
  /// Forward a rumor to up to `fanout` peers. The buffer is shared, not
  /// copied: every hop of a rumor reuses the original sender's bytes.
  void relay(NodeId from, const std::shared_ptr<const Bytes>& payload);
  /// First-seen bookkeeping; true when `node` had not seen the rumor yet.
  bool mark_seen(NodeId node, const Bytes& payload);

  Network& network_;
  Rng rng_;
  std::size_t fanout_;
  DeliverFn deliver_;
  std::vector<NodeId> members_;
  std::unordered_map<std::uint64_t, std::unordered_set<NodeId>> seen_;
};

}  // namespace mv::net
