// Chunked snapshot transfer over the simulated network.
//
// A fresh replica catches up by fetching a state snapshot instead of
// replaying history (ledger/snapshot.h). This module is the transport:
// request/response for a manifest, its chunks, and the block suffix, with
// per-chunk verification on arrival, out-of-order assembly, and re-request
// of dropped or corrupted chunks under capped retries with linear backoff.
//
// The client is a swarm: start() takes a *set* of peers and stripes the
// windowed chunk requests across every replica that served a byte-identical
// manifest, under a per-peer in-flight cap. Peers earn reputation strikes
// for timeouts, corrupt chunks, and persistent busy-NACKs; at the strike cap
// a peer is demoted and only used again as a last resort. A straggler chunk
// is re-requested from a different peer than the one that stalled it, and a
// busy NACK re-aims the request at an idle peer instead of parking it behind
// the overloaded one. The single-peer overload keeps the original behavior
// (nowhere to reroute, so busy requests park and persistent overload is a
// dead end).
//
// The transport is payload-agnostic: what a manifest means, how a chunk is
// digested, and how the assembled bytes are installed are supplied as hooks
// by the ledger-side glue (ledger/snapshot_sync.h), so this layer stays free
// of ledger types. Lost requests and lost responses look identical to the
// client — a quiet in-flight slot — and are retried the same way. Protocol
// events are surfaced in NetworkStats (snapshot_* counters).
#pragma once

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/job_queue.h"
#include "crypto/sha256.h"
#include "net/network.h"

namespace mv::net {

// Wire topics. Requests carry the snapshot height so a server can serve
// several retained snapshots; responses echo it so stale replies are ignored.
inline constexpr const char* kSnapshotManifestReq = "snap.manifest_req";
inline constexpr const char* kSnapshotManifestResp = "snap.manifest_resp";
inline constexpr const char* kSnapshotChunkReq = "snap.chunk_req";
inline constexpr const char* kSnapshotChunkResp = "snap.chunk_resp";
inline constexpr const char* kSnapshotBlocksReq = "snap.blocks_req";
inline constexpr const char* kSnapshotBlocksResp = "snap.blocks_resp";

struct SnapshotTransferConfig {
  std::size_t window = 8;      ///< chunk requests kept in flight (global cap)
  Tick request_timeout = 16;   ///< ticks before a quiet request is re-sent
  std::size_t max_retries = 6; ///< per request; exhausted => sync fails
  Tick backoff = 8;            ///< extra timeout per accumulated retry
  /// Chunk requests kept in flight at any single peer. Total striping
  /// capacity is min(window, eligible peers * per_peer_inflight); the
  /// default matches `window` so a single-peer sync behaves as before.
  std::size_t per_peer_inflight = 8;
  /// Reputation strikes (timeout, corrupt chunk, busy exhaustion, manifest
  /// mismatch) before a peer is demoted to last-resort duty.
  std::size_t demote_after = 3;
  /// Consecutive clean chunk serves after which a demoted peer is promoted
  /// back to full duty (strikes forgiven). Demotion is otherwise permanent
  /// for the sync, which over-penalizes a peer that hit one transient rough
  /// patch in a long striped transfer. 0 disables promotion.
  std::size_t promote_after = 8;
};

/// Serves manifests, chunks, and block suffixes from local callbacks. An
/// empty Bytes from a callback means "unavailable" and is answered with a
/// refusal the client treats as fatal for that sync.
///
/// With a JobQueue configured, chunk requests — the bulk of a sync's cost —
/// are served as JobClass::kSnapshotServe jobs instead of inline: an
/// overloaded server sheds the serve and answers a cheap `busy` NACK
/// (never shed itself — it costs no state lookup or serialization), so the
/// client defers and re-asks instead of burning timeout ticks and retry
/// budget on what would otherwise look like loss. Manifest and
/// block-suffix requests stay inline — they happen once per sync and gate
/// everything else. The source callbacks then run on queue workers, so what
/// they read (e.g. a chain's retained state) must not mutate concurrently;
/// drain the queue before touching it. Queued serve jobs reference this
/// server: drain() the queue (or destroy it, which abandons them) before
/// destroying the server.
class SnapshotServer {
 public:
  struct Source {
    std::function<Bytes(std::int64_t height)> manifest;
    std::function<Bytes(std::int64_t height, std::uint32_t index)> chunk;
    std::function<Bytes(std::int64_t from_height)> blocks;
  };

  SnapshotServer(Network& network, Source source, JobQueue* queue = nullptr)
      : network_(network), source_(std::move(source)), queue_(queue) {}

  void bind(NodeId self) { self_ = self; }

  /// Dispatch one delivered message; true when the topic was ours.
  bool handle(const Message& msg);

  /// Test-only fault injection: mutate outgoing chunk bytes (after the
  /// digest in the manifest was computed), simulating in-flight corruption.
  /// Set before traffic starts when a queue is configured.
  void set_chunk_fault(std::function<void(std::uint32_t index, Bytes&)> fault) {
    chunk_fault_ = std::move(fault);
  }

 private:
  /// Serve one chunk request (lookup, fault hook, respond). Runs inline or
  /// on a queue worker.
  void serve_chunk(NodeId requester, std::int64_t height, std::uint32_t index);

  Network& network_;
  Source source_;
  NodeId self_;
  JobQueue* queue_;
  std::function<void(std::uint32_t, Bytes&)> chunk_fault_;
};

/// Client state machine: manifest -> chunks (windowed, out-of-order, striped
/// across the peer set) -> install -> block suffix -> done. Drive with
/// handle() on every delivered message and tick() once per simulation step
/// (timeout scanning).
class SnapshotClient {
 public:
  enum class Phase { kIdle, kManifest, kChunks, kBlocks, kDone, kFailed };

  /// Per-peer striping and reputation state, exposed for tests and
  /// diagnostics. A peer only receives chunk requests once it has served a
  /// manifest byte-identical to the accepted one; demotion pushes it to the
  /// back of every selection until no healthy peer has capacity.
  struct PeerState {
    NodeId id;
    std::size_t inflight = 0;  ///< chunk requests outstanding at this peer
    std::size_t strikes = 0;   ///< reputation: timeouts/corruption/busy caps
    std::size_t served = 0;    ///< chunks that arrived and verified
    std::size_t clean_streak = 0;  ///< consecutive verified serves since last strike
    bool demoted = false;      ///< strikes reached demote_after
    bool has_manifest = false; ///< advertised the accepted manifest
    bool refused = false;      ///< does not serve this height; never used
  };

  struct Hooks {
    /// Authenticate a served manifest (decode, bind to a trusted header) and
    /// return the expected per-chunk digests. An error demotes the serving
    /// peer; the sync fails once no peer can still deliver a manifest.
    std::function<Result<std::vector<crypto::Digest>>(std::int64_t height,
                                                      const Bytes& manifest)>
        accept_manifest;
    /// Digest of one chunk as the manifest commits to it.
    std::function<crypto::Digest(std::uint32_t index, const Bytes& chunk)>
        chunk_digest;
    /// Optional: chunks the client already holds locally (diff snapshots).
    /// Called once, right after the manifest is accepted; every returned
    /// chunk is digest-verified like a served one before being marked
    /// present, so a stale or corrupt local base degrades to a normal fetch.
    std::function<std::vector<std::pair<std::uint32_t, Bytes>>()> prefill;
    /// All chunks verified: install the snapshot. Returns the height block
    /// replay should resume from, or an error to fail the sync.
    std::function<Result<std::int64_t>(std::vector<Bytes> chunks)> install;
    /// Apply the served block suffix. ok() completes the sync.
    std::function<Status(const Bytes& blocks)> replay;
  };

  SnapshotClient(Network& network, SnapshotTransferConfig config, Hooks hooks)
      : network_(network), config_(config), hooks_(std::move(hooks)) {}

  void bind(NodeId self) { self_ = self; }

  /// Begin fetching the snapshot at `height`, striping chunk requests across
  /// `peers`. Fails if a sync is already running or `peers` is empty.
  [[nodiscard]] Status start(std::vector<NodeId> peers, std::int64_t height);
  /// Single-peer convenience overload (the original protocol).
  [[nodiscard]] Status start(NodeId peer, std::int64_t height) {
    return start(std::vector<NodeId>{peer}, height);
  }

  /// Dispatch one delivered message; true when the topic was ours.
  bool handle(const Message& msg);

  /// Scan in-flight requests for timeouts; re-send (with backoff, preferring
  /// a different peer) or fail the sync once retries are exhausted. Call
  /// once per simulation step.
  void tick();

  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] bool done() const { return phase_ == Phase::kDone; }
  [[nodiscard]] bool failed() const { return phase_ == Phase::kFailed; }
  /// Failure cause; meaningful when failed().
  [[nodiscard]] const std::optional<Error>& failure() const { return failure_; }
  /// Chunks present locally, whether served by a peer or reused from a diff
  /// prefill.
  [[nodiscard]] std::size_t chunks_received() const { return received_; }
  [[nodiscard]] const std::vector<PeerState>& peers() const { return peers_; }

 private:
  struct Inflight {
    Tick sent_at = 0;
    std::size_t retries = 0;
    /// Consecutive server_busy NACKs; deferrals, not retries — an honest
    /// busy answer never charges the loss-retry budget, but is capped on its
    /// own so a permanently overloaded server still fails a single-peer
    /// sync (a swarm demotes the peer and reroutes instead).
    std::size_t busy_defers = 0;
    /// When >= 0, the request is parked until this tick (busy backoff); the
    /// timeout scan skips it and tick() re-sends once the tick arrives.
    Tick resend_at = -1;
    /// Index into peers_ of the peer this request is charged against.
    std::size_t peer = 0;
  };

  void fail(std::string code, std::string message);
  /// One reputation strike; demotes at the configured cap.
  void strike(std::size_t peer_idx);
  /// Strike straight to demotion (byzantine manifest, busy exhaustion).
  void strike_out(std::size_t peer_idx);
  /// One verified serve; promotes a demoted peer back after promote_after
  /// consecutive clean serves (any strike resets the streak).
  void credit(std::size_t peer_idx);
  /// Peer index for a sender NodeId, or -1 when it is not in the swarm.
  [[nodiscard]] int peer_index(NodeId id) const;
  /// Best peer with chunk capacity: prefers not-`avoid`, then not demoted,
  /// then fewest strikes, then least loaded. -1 when nobody (or, with
  /// `exclude_avoid`, nobody else) has capacity.
  [[nodiscard]] int pick_peer(int avoid, bool exclude_avoid) const;
  [[nodiscard]] bool all_peers_refused() const;
  /// Manifest request to every peer that has not answered yet.
  void send_manifest_req();
  void send_blocks_req();
  void request_chunk(std::uint32_t index, std::size_t peer_idx);
  /// Re-request after a timeout or a rejected payload; fails the sync when
  /// the retry budget is exhausted. `resend` performs the actual send.
  void retry(Inflight& slot, const std::function<void()>& resend);
  void fill_window();
  /// All chunks verified (served or prefilled): install and move to blocks.
  void finish_chunks();
  void on_manifest(const Message& msg);
  void on_chunk(const Message& msg);
  void on_blocks(const Message& msg);

  Network& network_;
  SnapshotTransferConfig config_;
  Hooks hooks_;
  NodeId self_;
  std::vector<PeerState> peers_;
  std::int64_t height_ = -1;
  Phase phase_ = Phase::kIdle;
  std::optional<Error> failure_;

  Inflight single_;  ///< the manifest / blocks request in flight
  Bytes manifest_bytes_;  ///< accepted manifest; later peers must byte-match
  std::size_t blocks_peer_ = 0;  ///< peer index serving the block suffix
  std::vector<crypto::Digest> expected_;
  std::vector<Bytes> chunks_;
  std::vector<std::optional<Inflight>> inflight_;  ///< per chunk, when requested
  std::vector<bool> have_;
  std::size_t received_ = 0;
  std::uint32_t next_unrequested_ = 0;
  std::int64_t replay_from_ = 0;
};

}  // namespace mv::net
