// Simulated message-passing network.
//
// The decentralized substrates (ledger consensus, gossip) run on top of this
// network instead of real sockets: discrete-event delivery on the shared
// SimClock with per-link latency, jitter, loss, and named partitions.
// Everything is deterministic given the seed.
//
// Threading: send()/broadcast() and the stats counters are internally
// locked, so protocol jobs running on JobQueue workers (gossip relays,
// snapshot chunk serving) may send concurrently with the simulation thread.
// Delivery stays single-threaded: step()/run_until_idle() must be driven
// from one thread, and handlers run on it. Enqueue order — and therefore
// the FIFO tie-break between same-tick messages — follows whatever order
// concurrent senders win the lock, so byte-exact delivery traces are only
// guaranteed while all sends come from one thread (the seed configuration).
// Topology calls (add_node/set_link/set_group/heal) are setup-phase: finish
// them before concurrent traffic starts.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/ids.h"
#include "common/rng.h"

namespace mv::net {

struct Message {
  NodeId from;
  NodeId to;
  std::string topic;
  /// Payload buffer, shared across broadcast/relay recipients so one encode
  /// serves every copy in flight. Never mutated after send.
  std::shared_ptr<const Bytes> payload_buf;
  Tick sent_at = 0;
  Tick deliver_at = 0;

  [[nodiscard]] const Bytes& payload() const {
    static const Bytes kEmpty;
    return payload_buf ? *payload_buf : kEmpty;
  }
};

/// Link behaviour; latency is in clock ticks.
struct LinkParams {
  double base_latency = 1.0;
  double jitter = 0.5;      ///< uniform extra in [0, jitter)
  double drop_rate = 0.0;   ///< iid loss probability
};

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t partitioned = 0;
  std::uint64_t invalid_dest = 0;  ///< sends refused: unknown destination
  std::uint64_t bytes_sent = 0;
  /// Relays withheld by a protocol's backpressure (e.g. Gossip's in-flight
  /// high-water mark) — never entered the queue, distinct from link `dropped`.
  std::uint64_t backpressure_dropped = 0;
  // Snapshot-transfer protocol counters (net/snapshot_transfer.h).
  std::uint64_t snapshot_chunks_served = 0;    ///< chunk responses sent
  std::uint64_t snapshot_chunks_verified = 0;  ///< arrived with a good digest
  std::uint64_t snapshot_chunks_rejected = 0;  ///< corrupted/refused on arrival
  std::uint64_t snapshot_retries = 0;          ///< re-requests (timeout/reject)
  std::uint64_t snapshot_syncs_completed = 0;
  std::uint64_t snapshot_syncs_failed = 0;
  /// Chunk requests answered with an explicit server_busy NACK (the serve
  /// job was shed) instead of a silent non-answer.
  std::uint64_t snapshot_busy_nacks = 0;
  // Swarm catch-up counters (multi-peer striped sync).
  std::uint64_t snapshot_peers_demoted = 0;    ///< reputation strikes reached the cap
  std::uint64_t snapshot_peers_promoted = 0;   ///< demoted peers recovered via clean serves
  std::uint64_t snapshot_busy_reroutes = 0;    ///< busy NACK re-aimed at another peer
  std::uint64_t snapshot_diff_chunks_reused = 0;  ///< served from the local diff base
  // Subscription protocol counters (net/subscription.h).
  std::uint64_t subscription_sheds = 0;    ///< whole-commit fan-outs shed
  std::uint64_t subscribers_evicted = 0;   ///< dropped at the unacked cap
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  Network(SimClock& clock, Rng rng, LinkParams defaults = {});

  /// Register a node; the handler runs at delivery time.
  NodeId add_node(Handler handler);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::vector<NodeId> node_ids() const;

  /// Override link parameters for a directed pair.
  void set_link(NodeId from, NodeId to, LinkParams params);

  /// Assign a node to a partition group; messages across groups are dropped
  /// until heal() is called. Default group is 0.
  void set_group(NodeId node, int group);
  void heal();

  /// Queue a unicast message; returns false if refused at send time (unknown
  /// destination, partition, or simulated loss).
  bool send(NodeId from, NodeId to, std::string topic, Bytes payload);
  /// Zero-copy variant: the payload buffer is shared with the message, not
  /// copied. The caller must not mutate it afterwards.
  bool send(NodeId from, NodeId to, std::string topic,
            std::shared_ptr<const Bytes> payload);

  /// Queue the same payload to every other node. All recipients share one
  /// payload buffer — the bytes are copied once, not node_count-1 times.
  void broadcast(NodeId from, const std::string& topic, const Bytes& payload);
  void broadcast(NodeId from, const std::string& topic,
                 std::shared_ptr<const Bytes> payload);

  /// Deliver everything due at or before the current tick.
  void step();

  /// Convenience: advance the clock tick-by-tick until the queue drains or
  /// `max_ticks` elapse. Returns ticks advanced.
  Tick run_until_idle(Tick max_ticks = 100000);

  [[nodiscard]] bool idle() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.empty();
  }
  /// Snapshot of the counters (copied under the lock; counters may advance
  /// while worker-executed protocol jobs are still in flight — drain the
  /// queue first for exact values).
  [[nodiscard]] NetworkStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  /// Record `n` protocol-level backpressure drops (see NetworkStats).
  void note_backpressure_drop(std::uint64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.backpressure_dropped += n;
  }
  // Snapshot-transfer protocol events (net/snapshot_transfer.h).
  void note_snapshot_chunk_served() { count(&NetworkStats::snapshot_chunks_served); }
  void note_snapshot_chunk_verified() { count(&NetworkStats::snapshot_chunks_verified); }
  void note_snapshot_chunk_rejected() { count(&NetworkStats::snapshot_chunks_rejected); }
  void note_snapshot_retry() { count(&NetworkStats::snapshot_retries); }
  void note_snapshot_sync(bool completed) {
    count(completed ? &NetworkStats::snapshot_syncs_completed
                    : &NetworkStats::snapshot_syncs_failed);
  }
  void note_snapshot_busy_nack() { count(&NetworkStats::snapshot_busy_nacks); }
  void note_snapshot_peer_demoted() { count(&NetworkStats::snapshot_peers_demoted); }
  void note_snapshot_peer_promoted() { count(&NetworkStats::snapshot_peers_promoted); }
  void note_snapshot_busy_reroute() { count(&NetworkStats::snapshot_busy_reroutes); }
  void note_snapshot_diff_chunk_reused() {
    count(&NetworkStats::snapshot_diff_chunks_reused);
  }
  // Subscription protocol events (net/subscription.h).
  void note_subscription_shed() { count(&NetworkStats::subscription_sheds); }
  void note_subscriber_evicted() { count(&NetworkStats::subscribers_evicted); }
  [[nodiscard]] SimClock& clock() { return clock_; }

 private:
  struct Pending {
    Message msg;
    std::uint64_t seq;  // FIFO tie-break for equal delivery ticks
    bool operator>(const Pending& other) const {
      if (msg.deliver_at != other.msg.deliver_at) {
        return msg.deliver_at > other.msg.deliver_at;
      }
      return seq > other.seq;
    }
  };

  [[nodiscard]] const LinkParams& link(NodeId from, NodeId to) const;

  void count(std::uint64_t NetworkStats::* field) {
    std::lock_guard<std::mutex> lock(mu_);
    ++(stats_.*field);
  }

  SimClock& clock_;
  /// Guards queue_/seq_/stats_/rng_ against concurrent senders (JobQueue
  /// workers). Never held while a delivery handler runs.
  mutable std::mutex mu_;
  Rng rng_;
  LinkParams defaults_;
  std::vector<Handler> nodes_;
  std::unordered_map<NodeId, int> groups_;
  std::map<std::pair<NodeId, NodeId>, LinkParams> links_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
  std::uint64_t seq_ = 0;
  NetworkStats stats_;
};

}  // namespace mv::net
