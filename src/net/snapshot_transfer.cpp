#include "net/snapshot_transfer.h"

#include <algorithm>

namespace mv::net {

namespace {

// Responses echo the request's height (and chunk index) so a client can
// discard replies from an abandoned or restarted sync. Malformed messages
// are silently ignored: the transport retries, and the payloads that matter
// are authenticated one layer up (manifest digests, chunk digests).

Bytes encode_height_req(std::int64_t height) {
  ByteWriter w;
  w.i64(height);
  return w.take();
}

std::optional<std::int64_t> decode_height_req(const Bytes& payload) {
  ByteReader r(payload);
  const auto height = r.i64();
  if (!height.ok() || !r.exhausted()) return std::nullopt;
  return height.value();
}

struct ChunkReq {
  std::int64_t height = 0;
  std::uint32_t index = 0;
};

Bytes encode_chunk_req(const ChunkReq& req) {
  ByteWriter w;
  w.i64(req.height);
  w.u32(req.index);
  return w.take();
}

std::optional<ChunkReq> decode_chunk_req(const Bytes& payload) {
  ByteReader r(payload);
  const auto height = r.i64();
  const auto index = r.u32();
  if (!height.ok() || !index.ok() || !r.exhausted()) return std::nullopt;
  return ChunkReq{height.value(), index.value()};
}

// Response status byte. kBusy is the chunk path's explicit load-shed NACK:
// cheap to produce (no source lookup, empty data) and never shed itself, it
// tells the client to back off without burning its retry budget — a silent
// shed would be indistinguishable from packet loss and charged as one.
constexpr std::uint8_t kRespRefused = 0;
constexpr std::uint8_t kRespOk = 1;
constexpr std::uint8_t kRespBusy = 2;

struct Resp {
  std::int64_t height = 0;
  std::uint32_t index = 0;  ///< chunk responses only
  std::uint8_t status = kRespRefused;
  Bytes data;

  [[nodiscard]] bool ok() const { return status == kRespOk; }
};

Bytes encode_resp(const Resp& resp, bool with_index) {
  ByteWriter w;
  w.i64(resp.height);
  if (with_index) w.u32(resp.index);
  w.u8(resp.status);
  w.bytes(resp.data);
  return w.take();
}

std::optional<Resp> decode_resp(const Bytes& payload, bool with_index) {
  ByteReader r(payload);
  Resp resp;
  const auto height = r.i64();
  if (!height.ok()) return std::nullopt;
  resp.height = height.value();
  if (with_index) {
    const auto index = r.u32();
    if (!index.ok()) return std::nullopt;
    resp.index = index.value();
  }
  const auto status = r.u8();
  if (!status.ok() || status.value() > kRespBusy) return std::nullopt;
  resp.status = status.value();
  auto data = r.bytes();
  if (!data.ok() || !r.exhausted()) return std::nullopt;
  resp.data = std::move(data).value();
  return resp;
}

}  // namespace

// ---------------------------------------------------------- SnapshotServer

bool SnapshotServer::handle(const Message& msg) {
  if (msg.topic == kSnapshotManifestReq) {
    const auto height = decode_height_req(msg.payload());
    if (!height.has_value()) return true;
    Resp resp;
    resp.height = *height;
    resp.data = source_.manifest ? source_.manifest(*height) : Bytes{};
    resp.status = resp.data.empty() ? kRespRefused : kRespOk;
    (void)network_.send(self_, msg.from, kSnapshotManifestResp,
                        encode_resp(resp, /*with_index=*/false));
    return true;
  }
  if (msg.topic == kSnapshotChunkReq) {
    const auto req = decode_chunk_req(msg.payload());
    if (!req.has_value()) return true;
    if (queue_ != nullptr) {
      // Served off the simulation thread as kSnapshotServe work. A shed job
      // is answered inline with a busy NACK — producing it costs no source
      // lookup and no serialization of chunk data, so the NACK itself is
      // never shed — and the client backs off immediately instead of
      // spending timeout ticks and a retry on what looks like loss.
      const NodeId requester = msg.from;
      const std::int64_t height = req->height;
      const std::uint32_t index = req->index;
      const bool admitted = queue_->submit(
          JobClass::kSnapshotServe, [this, requester, height, index] {
            serve_chunk(requester, height, index);
          });
      if (!admitted) {
        Resp resp;
        resp.height = height;
        resp.index = index;
        resp.status = kRespBusy;
        network_.note_snapshot_busy_nack();
        (void)network_.send(self_, requester, kSnapshotChunkResp,
                            encode_resp(resp, /*with_index=*/true));
      }
      return true;
    }
    serve_chunk(msg.from, req->height, req->index);
    return true;
  }
  if (msg.topic == kSnapshotBlocksReq) {
    const auto from_height = decode_height_req(msg.payload());
    if (!from_height.has_value()) return true;
    Resp resp;
    resp.height = *from_height;
    resp.data = source_.blocks ? source_.blocks(*from_height) : Bytes{};
    // An empty archive is still a valid answer (the peer is already caught
    // up); only a missing callback refuses.
    resp.status = source_.blocks ? kRespOk : kRespRefused;
    (void)network_.send(self_, msg.from, kSnapshotBlocksResp,
                        encode_resp(resp, /*with_index=*/false));
    return true;
  }
  return false;
}

void SnapshotServer::serve_chunk(NodeId requester, std::int64_t height,
                                 std::uint32_t index) {
  Resp resp;
  resp.height = height;
  resp.index = index;
  resp.data = source_.chunk ? source_.chunk(height, index) : Bytes{};
  resp.status = resp.data.empty() ? kRespRefused : kRespOk;
  if (resp.ok() && chunk_fault_) chunk_fault_(index, resp.data);
  if (resp.ok()) network_.note_snapshot_chunk_served();
  (void)network_.send(self_, requester, kSnapshotChunkResp,
                      encode_resp(resp, /*with_index=*/true));
}

// ---------------------------------------------------------- SnapshotClient

Status SnapshotClient::start(std::vector<NodeId> peers, std::int64_t height) {
  if (phase_ != Phase::kIdle && phase_ != Phase::kDone &&
      phase_ != Phase::kFailed) {
    return Status::fail(errc::kSnapshotBusy, "a sync is already running");
  }
  if (peers.empty()) {
    return Status::fail(errc::kSnapshotNoPeers, "no peers to sync from");
  }
  peers_.clear();
  peers_.reserve(peers.size());
  for (NodeId id : peers) {
    PeerState p;
    p.id = id;
    peers_.push_back(p);
  }
  height_ = height;
  phase_ = Phase::kManifest;
  failure_.reset();
  manifest_bytes_.clear();
  expected_.clear();
  chunks_.clear();
  inflight_.clear();
  have_.clear();
  received_ = 0;
  next_unrequested_ = 0;
  blocks_peer_ = 0;
  single_ = Inflight{};
  send_manifest_req();
  return {};
}

void SnapshotClient::fail(std::string code, std::string message) {
  phase_ = Phase::kFailed;
  failure_ = Error{std::move(code), std::move(message)};
  network_.note_snapshot_sync(false);
}

void SnapshotClient::strike(std::size_t peer_idx) {
  PeerState& p = peers_[peer_idx];
  ++p.strikes;
  p.clean_streak = 0;
  if (!p.demoted && p.strikes >= config_.demote_after) {
    p.demoted = true;
    network_.note_snapshot_peer_demoted();
  }
}

void SnapshotClient::strike_out(std::size_t peer_idx) {
  PeerState& p = peers_[peer_idx];
  p.strikes = std::max(p.strikes, config_.demote_after);
  p.clean_streak = 0;
  if (!p.demoted) {
    p.demoted = true;
    network_.note_snapshot_peer_demoted();
  }
}

void SnapshotClient::credit(std::size_t peer_idx) {
  PeerState& p = peers_[peer_idx];
  if (!p.demoted || config_.promote_after == 0) return;
  if (++p.clean_streak >= config_.promote_after) {
    p.demoted = false;
    p.strikes = 0;
    p.clean_streak = 0;
    network_.note_snapshot_peer_promoted();
  }
}

int SnapshotClient::peer_index(NodeId id) const {
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

int SnapshotClient::pick_peer(int avoid, bool exclude_avoid) const {
  // Lexicographic score: not the peer we are steering away from, then not
  // demoted, then fewest strikes, then least loaded — reputation-weighted
  // selection that spreads the stripe over the healthiest peers and only
  // returns to a demoted one when nobody else has capacity.
  int best = -1;
  auto score = [&](std::size_t i) {
    const PeerState& p = peers_[i];
    return std::tuple<int, int, std::size_t, std::size_t, std::size_t>(
        static_cast<int>(i) == avoid ? 1 : 0, p.demoted ? 1 : 0, p.strikes,
        p.inflight, i);
  };
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    const PeerState& p = peers_[i];
    if (p.refused || !p.has_manifest) continue;
    if (p.inflight >= config_.per_peer_inflight) continue;
    if (exclude_avoid && static_cast<int>(i) == avoid) continue;
    if (best < 0 || score(i) < score(static_cast<std::size_t>(best))) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

bool SnapshotClient::all_peers_refused() const {
  return std::all_of(peers_.begin(), peers_.end(),
                     [](const PeerState& p) { return p.refused; });
}

void SnapshotClient::send_manifest_req() {
  single_.sent_at = network_.clock().now();
  for (const PeerState& p : peers_) {
    if (p.refused || p.has_manifest || p.demoted) continue;
    (void)network_.send(self_, p.id, kSnapshotManifestReq,
                        encode_height_req(height_));
  }
}

void SnapshotClient::send_blocks_req() {
  // The suffix is one request: aim it at the best-reputed peer (most chunks
  // served, fewest strikes), skipping demoted peers while any healthy one
  // remains.
  int best = -1;
  auto score = [&](std::size_t i) {
    const PeerState& p = peers_[i];
    // ~served: lexicographic min prefers the peer that served the most.
    return std::tuple<int, std::size_t, std::size_t, std::size_t>(
        p.demoted ? 1 : 0, p.strikes, ~p.served, i);
  };
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].refused) continue;
    if (best < 0 || score(i) < score(static_cast<std::size_t>(best))) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) best = 0;  // all refused is failed earlier; belt and braces
  blocks_peer_ = static_cast<std::size_t>(best);
  single_.sent_at = network_.clock().now();
  (void)network_.send(self_, peers_[blocks_peer_].id, kSnapshotBlocksReq,
                      encode_height_req(replay_from_));
}

void SnapshotClient::request_chunk(std::uint32_t index, std::size_t peer_idx) {
  auto& slot = inflight_[index];
  if (slot.has_value()) {
    // Invariant: an existing slot is charged against exactly one peer.
    --peers_[slot->peer].inflight;
  } else {
    slot = Inflight{};
  }
  slot->peer = peer_idx;
  ++peers_[peer_idx].inflight;
  slot->sent_at = network_.clock().now();
  slot->resend_at = -1;
  (void)network_.send(self_, peers_[peer_idx].id, kSnapshotChunkReq,
                      encode_chunk_req(ChunkReq{height_, index}));
}

void SnapshotClient::retry(Inflight& slot, const std::function<void()>& resend) {
  if (slot.retries >= config_.max_retries) {
    fail(errc::kSnapshotTimeout, "retry budget exhausted");
    return;
  }
  ++slot.retries;
  network_.note_snapshot_retry();
  resend();
}

void SnapshotClient::fill_window() {
  std::size_t in_flight = 0;
  for (const auto& slot : inflight_) {
    if (slot.has_value()) ++in_flight;
  }
  while (in_flight < config_.window && next_unrequested_ < have_.size()) {
    if (have_[next_unrequested_]) {  // prefilled from the diff base
      ++next_unrequested_;
      continue;
    }
    const int peer = pick_peer(/*avoid=*/-1, /*exclude_avoid=*/false);
    if (peer < 0) break;  // every eligible peer is at its in-flight cap
    request_chunk(next_unrequested_++, static_cast<std::size_t>(peer));
    ++in_flight;
  }
}

void SnapshotClient::finish_chunks() {
  auto replay_from = hooks_.install(std::move(chunks_));
  chunks_.clear();
  if (!replay_from.ok()) {
    fail(replay_from.error().code, replay_from.error().message);
    return;
  }
  replay_from_ = replay_from.value();
  phase_ = Phase::kBlocks;
  single_ = Inflight{};
  send_blocks_req();
}

void SnapshotClient::on_manifest(const Message& msg) {
  if (phase_ != Phase::kManifest && phase_ != Phase::kChunks) return;
  const int from = peer_index(msg.from);
  if (from < 0) return;
  PeerState& peer = peers_[static_cast<std::size_t>(from)];
  if (peer.has_manifest || peer.refused) return;  // duplicate answer
  const auto resp = decode_resp(msg.payload(), /*with_index=*/false);
  if (!resp.has_value() || resp->height != height_) return;
  if (!resp->ok()) {
    peer.refused = true;
    if (phase_ == Phase::kManifest && all_peers_refused()) {
      fail(errc::kSnapshotUnavailable, "no peer serves this height");
    }
    return;
  }
  if (!manifest_bytes_.empty()) {
    // A manifest is already anchored; later advertisements must match it
    // byte for byte (the encoding is canonical, so honest replicas of the
    // same snapshot agree exactly). A divergent manifest is either another
    // chunk geometry — useless for striping — or a lying peer; both are
    // struck out of the stripe.
    if (resp->data == manifest_bytes_) {
      peer.has_manifest = true;
      if (phase_ == Phase::kChunks) fill_window();
    } else {
      strike_out(static_cast<std::size_t>(from));
    }
    return;
  }
  auto digests = hooks_.accept_manifest(height_, resp->data);
  if (!digests.ok()) {
    // This peer's manifest failed authentication. That poisons the peer,
    // not necessarily the sync: another peer may still deliver a manifest
    // that binds to the verified header. Fail only when none can.
    strike_out(static_cast<std::size_t>(from));
    const bool candidates_left =
        std::any_of(peers_.begin(), peers_.end(), [](const PeerState& p) {
          return !p.refused && !p.demoted;
        });
    if (!candidates_left) {
      fail(digests.error().code, digests.error().message);
    }
    return;
  }
  expected_ = std::move(digests).value();
  if (expected_.empty()) {
    fail(errc::kSnapshotBadManifest, "manifest commits to zero chunks");
    return;
  }
  manifest_bytes_ = resp->data;
  peer.has_manifest = true;
  chunks_.assign(expected_.size(), Bytes{});
  inflight_.assign(expected_.size(), std::nullopt);
  have_.assign(expected_.size(), false);
  received_ = 0;
  next_unrequested_ = 0;
  phase_ = Phase::kChunks;
  if (hooks_.prefill) {
    // Diff snapshot: reuse locally-held chunks whose digests already match
    // the manifest. Each is verified like a served chunk, so a stale or
    // corrupt base silently degrades to fetching that chunk.
    for (auto& [index, bytes] : hooks_.prefill()) {
      if (index >= have_.size() || have_[index]) continue;
      if (hooks_.chunk_digest(index, bytes) != expected_[index]) continue;
      chunks_[index] = std::move(bytes);
      have_[index] = true;
      ++received_;
      network_.note_snapshot_diff_chunk_reused();
    }
  }
  if (received_ == have_.size()) {
    finish_chunks();
    return;
  }
  fill_window();
}

void SnapshotClient::on_chunk(const Message& msg) {
  if (phase_ != Phase::kChunks) return;
  const int from = peer_index(msg.from);
  if (from < 0) return;
  const auto resp = decode_resp(msg.payload(), /*with_index=*/true);
  if (!resp.has_value() || resp->height != height_ ||
      resp->index >= have_.size()) {
    return;
  }
  const std::uint32_t index = resp->index;
  if (have_[index]) return;  // duplicate after a retried request
  auto& slot = inflight_[index];
  if (!slot.has_value()) return;  // stale reply from an abandoned sync
  if (slot->peer != static_cast<std::size_t>(from)) {
    return;  // answer from a peer this chunk is no longer routed to
  }
  PeerState& peer = peers_[slot->peer];
  if (resp->status == kRespBusy) {
    // The server shed the serve job and said so. An honest "busy" never
    // charges the loss-retry budget. With other peers available the request
    // is re-aimed at the least-loaded one immediately; alone with the busy
    // server, it parks on a linear backoff. Either way consecutive busy
    // answers are capped: exhaustion demotes the peer and reroutes, and
    // only a swarm with nowhere left to go fails.
    ++slot->busy_defers;
    if (slot->busy_defers > config_.max_retries * 4) {
      strike_out(slot->peer);
      // Exhaustion only ever reroutes to a peer in good standing: if every
      // alternative has already been demoted, the whole swarm is saturated
      // and the sync fails like the single-peer dead end.
      const int other = pick_peer(from, /*exclude_avoid=*/true);
      if (other < 0 || peers_[static_cast<std::size_t>(other)].demoted) {
        fail(errc::kSnapshotServerBusy, "server persistently busy for chunk " +
                                            std::to_string(index));
        return;
      }
      slot->busy_defers = 0;
      network_.note_snapshot_busy_reroute();
      request_chunk(index, static_cast<std::size_t>(other));
      return;
    }
    if (const int other = pick_peer(from, /*exclude_avoid=*/true); other >= 0) {
      network_.note_snapshot_busy_reroute();
      request_chunk(index, static_cast<std::size_t>(other));
      return;
    }
    slot->resend_at = network_.clock().now() +
                      config_.backoff * static_cast<Tick>(slot->busy_defers);
    return;
  }
  if (!resp->ok()) {
    // The peer advertised this snapshot but refuses one of its chunks —
    // inconsistent, so stop trusting it. Another peer can still serve the
    // chunk; only a swarm with no peer left fails.
    strike_out(slot->peer);
    const int other = pick_peer(from, /*exclude_avoid=*/true);
    if (other < 0) {
      fail(errc::kSnapshotUnavailable,
           "peer refused chunk " + std::to_string(index));
      return;
    }
    request_chunk(index, static_cast<std::size_t>(other));
    return;
  }
  if (hooks_.chunk_digest(index, resp->data) != expected_[index]) {
    // Corrupted in flight (or a lying peer): never installed, re-requested
    // like a loss — preferring a different peer, and striking the one that
    // served garbage so a byzantine replica drops out of the stripe.
    network_.note_snapshot_chunk_rejected();
    strike(slot->peer);
    retry(*slot, [this, index, from] {
      const int other = pick_peer(from, /*exclude_avoid=*/false);
      request_chunk(index, other >= 0 ? static_cast<std::size_t>(other)
                                      : inflight_[index]->peer);
    });
    return;
  }
  network_.note_snapshot_chunk_verified();
  chunks_[index] = std::move(resp->data);
  have_[index] = true;
  --peer.inflight;
  ++peer.served;
  credit(slot->peer);
  slot.reset();
  ++received_;
  if (received_ < have_.size()) {
    fill_window();
    return;
  }
  finish_chunks();
}

void SnapshotClient::on_blocks(const Message& msg) {
  if (phase_ != Phase::kBlocks) return;
  if (msg.from != peers_[blocks_peer_].id) return;
  const auto resp = decode_resp(msg.payload(), /*with_index=*/false);
  if (!resp.has_value() || resp->height != replay_from_) return;
  if (!resp->ok()) {
    fail(errc::kSnapshotUnavailable, "peer does not serve the block suffix");
    return;
  }
  if (Status s = hooks_.replay(resp->data); !s.ok()) {
    fail(s.error().code, s.error().message);
    return;
  }
  phase_ = Phase::kDone;
  network_.note_snapshot_sync(true);
}

bool SnapshotClient::handle(const Message& msg) {
  if (msg.topic == kSnapshotManifestResp) {
    on_manifest(msg);
    return true;
  }
  if (msg.topic == kSnapshotChunkResp) {
    on_chunk(msg);
    return true;
  }
  if (msg.topic == kSnapshotBlocksResp) {
    on_blocks(msg);
    return true;
  }
  return false;
}

void SnapshotClient::tick() {
  const Tick now = network_.clock().now();
  const auto timed_out = [&](const Inflight& slot) {
    if (slot.resend_at >= 0) return false;  // parked on busy backoff
    const Tick deadline =
        slot.sent_at + config_.request_timeout +
        static_cast<Tick>(slot.retries) * config_.backoff;
    return now > deadline;
  };
  switch (phase_) {
    case Phase::kManifest:
      if (timed_out(single_)) retry(single_, [this] { send_manifest_req(); });
      break;
    case Phase::kChunks:
      for (std::uint32_t i = 0; i < inflight_.size(); ++i) {
        auto& slot = inflight_[i];
        if (!slot.has_value()) continue;
        if (slot->resend_at >= 0 && now >= slot->resend_at) {
          // Busy backoff elapsed: re-send without touching the retry
          // budget. Another peer may have freed up in the meantime.
          const int p = pick_peer(static_cast<int>(slot->peer),
                                  /*exclude_avoid=*/false);
          request_chunk(i, p >= 0 ? static_cast<std::size_t>(p) : slot->peer);
          continue;
        }
        if (!timed_out(*slot)) continue;
        // A straggler: the stripe moves the chunk to a different peer when
        // one has capacity, and the quiet peer takes a reputation strike.
        strike(slot->peer);
        retry(*slot, [this, i] {
          auto& s = inflight_[i];
          const int p = pick_peer(static_cast<int>(s->peer),
                                  /*exclude_avoid=*/false);
          request_chunk(i, p >= 0 ? static_cast<std::size_t>(p) : s->peer);
        });
        if (phase_ == Phase::kFailed) return;
      }
      break;
    case Phase::kBlocks:
      if (timed_out(single_)) {
        retry(single_, [this] { send_blocks_req(); });
      }
      break;
    default:
      break;
  }
}

}  // namespace mv::net
