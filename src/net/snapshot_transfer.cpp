#include "net/snapshot_transfer.h"

#include <algorithm>

namespace mv::net {

namespace {

// Responses echo the request's height (and chunk index) so a client can
// discard replies from an abandoned or restarted sync. Malformed messages
// are silently ignored: the transport retries, and the payloads that matter
// are authenticated one layer up (manifest digests, chunk digests).

Bytes encode_height_req(std::int64_t height) {
  ByteWriter w;
  w.i64(height);
  return w.take();
}

std::optional<std::int64_t> decode_height_req(const Bytes& payload) {
  ByteReader r(payload);
  const auto height = r.i64();
  if (!height.ok() || !r.exhausted()) return std::nullopt;
  return height.value();
}

struct ChunkReq {
  std::int64_t height = 0;
  std::uint32_t index = 0;
};

Bytes encode_chunk_req(const ChunkReq& req) {
  ByteWriter w;
  w.i64(req.height);
  w.u32(req.index);
  return w.take();
}

std::optional<ChunkReq> decode_chunk_req(const Bytes& payload) {
  ByteReader r(payload);
  const auto height = r.i64();
  const auto index = r.u32();
  if (!height.ok() || !index.ok() || !r.exhausted()) return std::nullopt;
  return ChunkReq{height.value(), index.value()};
}

// Response status byte. kBusy is the chunk path's explicit load-shed NACK:
// cheap to produce (no source lookup, empty data) and never shed itself, it
// tells the client to back off without burning its retry budget — a silent
// shed would be indistinguishable from packet loss and charged as one.
constexpr std::uint8_t kRespRefused = 0;
constexpr std::uint8_t kRespOk = 1;
constexpr std::uint8_t kRespBusy = 2;

struct Resp {
  std::int64_t height = 0;
  std::uint32_t index = 0;  ///< chunk responses only
  std::uint8_t status = kRespRefused;
  Bytes data;

  [[nodiscard]] bool ok() const { return status == kRespOk; }
};

Bytes encode_resp(const Resp& resp, bool with_index) {
  ByteWriter w;
  w.i64(resp.height);
  if (with_index) w.u32(resp.index);
  w.u8(resp.status);
  w.bytes(resp.data);
  return w.take();
}

std::optional<Resp> decode_resp(const Bytes& payload, bool with_index) {
  ByteReader r(payload);
  Resp resp;
  const auto height = r.i64();
  if (!height.ok()) return std::nullopt;
  resp.height = height.value();
  if (with_index) {
    const auto index = r.u32();
    if (!index.ok()) return std::nullopt;
    resp.index = index.value();
  }
  const auto status = r.u8();
  if (!status.ok() || status.value() > kRespBusy) return std::nullopt;
  resp.status = status.value();
  auto data = r.bytes();
  if (!data.ok() || !r.exhausted()) return std::nullopt;
  resp.data = std::move(data).value();
  return resp;
}

}  // namespace

// ---------------------------------------------------------- SnapshotServer

bool SnapshotServer::handle(const Message& msg) {
  if (msg.topic == kSnapshotManifestReq) {
    const auto height = decode_height_req(msg.payload());
    if (!height.has_value()) return true;
    Resp resp;
    resp.height = *height;
    resp.data = source_.manifest ? source_.manifest(*height) : Bytes{};
    resp.status = resp.data.empty() ? kRespRefused : kRespOk;
    (void)network_.send(self_, msg.from, kSnapshotManifestResp,
                        encode_resp(resp, /*with_index=*/false));
    return true;
  }
  if (msg.topic == kSnapshotChunkReq) {
    const auto req = decode_chunk_req(msg.payload());
    if (!req.has_value()) return true;
    if (queue_ != nullptr) {
      // Served off the simulation thread as kSnapshotServe work. A shed job
      // is answered inline with a busy NACK — producing it costs no source
      // lookup and no serialization of chunk data, so the NACK itself is
      // never shed — and the client backs off immediately instead of
      // spending timeout ticks and a retry on what looks like loss.
      const NodeId requester = msg.from;
      const std::int64_t height = req->height;
      const std::uint32_t index = req->index;
      const bool admitted = queue_->submit(
          JobClass::kSnapshotServe, [this, requester, height, index] {
            serve_chunk(requester, height, index);
          });
      if (!admitted) {
        Resp resp;
        resp.height = height;
        resp.index = index;
        resp.status = kRespBusy;
        network_.note_snapshot_busy_nack();
        (void)network_.send(self_, requester, kSnapshotChunkResp,
                            encode_resp(resp, /*with_index=*/true));
      }
      return true;
    }
    serve_chunk(msg.from, req->height, req->index);
    return true;
  }
  if (msg.topic == kSnapshotBlocksReq) {
    const auto from_height = decode_height_req(msg.payload());
    if (!from_height.has_value()) return true;
    Resp resp;
    resp.height = *from_height;
    resp.data = source_.blocks ? source_.blocks(*from_height) : Bytes{};
    // An empty archive is still a valid answer (the peer is already caught
    // up); only a missing callback refuses.
    resp.status = source_.blocks ? kRespOk : kRespRefused;
    (void)network_.send(self_, msg.from, kSnapshotBlocksResp,
                        encode_resp(resp, /*with_index=*/false));
    return true;
  }
  return false;
}

void SnapshotServer::serve_chunk(NodeId requester, std::int64_t height,
                                 std::uint32_t index) {
  Resp resp;
  resp.height = height;
  resp.index = index;
  resp.data = source_.chunk ? source_.chunk(height, index) : Bytes{};
  resp.status = resp.data.empty() ? kRespRefused : kRespOk;
  if (resp.ok() && chunk_fault_) chunk_fault_(index, resp.data);
  if (resp.ok()) network_.note_snapshot_chunk_served();
  (void)network_.send(self_, requester, kSnapshotChunkResp,
                      encode_resp(resp, /*with_index=*/true));
}

// ---------------------------------------------------------- SnapshotClient

Status SnapshotClient::start(NodeId peer, std::int64_t height) {
  if (phase_ != Phase::kIdle && phase_ != Phase::kDone &&
      phase_ != Phase::kFailed) {
    return Status::fail(errc::kSnapshotBusy, "a sync is already running");
  }
  peer_ = peer;
  height_ = height;
  phase_ = Phase::kManifest;
  failure_.reset();
  expected_.clear();
  chunks_.clear();
  inflight_.clear();
  have_.clear();
  received_ = 0;
  next_unrequested_ = 0;
  single_ = Inflight{};
  send_manifest_req();
  return {};
}

void SnapshotClient::fail(std::string code, std::string message) {
  phase_ = Phase::kFailed;
  failure_ = Error{std::move(code), std::move(message)};
  network_.note_snapshot_sync(false);
}

void SnapshotClient::send_manifest_req() {
  single_.sent_at = network_.clock().now();
  (void)network_.send(self_, peer_, kSnapshotManifestReq,
                      encode_height_req(height_));
}

void SnapshotClient::send_blocks_req() {
  single_.sent_at = network_.clock().now();
  (void)network_.send(self_, peer_, kSnapshotBlocksReq,
                      encode_height_req(replay_from_));
}

void SnapshotClient::request_chunk(std::uint32_t index) {
  auto& slot = inflight_[index];
  if (!slot.has_value()) slot = Inflight{};
  slot->sent_at = network_.clock().now();
  slot->resend_at = -1;
  (void)network_.send(self_, peer_, kSnapshotChunkReq,
                      encode_chunk_req(ChunkReq{height_, index}));
}

void SnapshotClient::retry(Inflight& slot, const std::function<void()>& resend) {
  if (slot.retries >= config_.max_retries) {
    fail(errc::kSnapshotTimeout, "retry budget exhausted");
    return;
  }
  ++slot.retries;
  network_.note_snapshot_retry();
  resend();
}

void SnapshotClient::fill_window() {
  std::size_t in_flight = 0;
  for (const auto& slot : inflight_) {
    if (slot.has_value()) ++in_flight;
  }
  while (in_flight < config_.window && next_unrequested_ < have_.size()) {
    const std::uint32_t index = next_unrequested_++;
    if (have_[index]) continue;
    request_chunk(index);
    ++in_flight;
  }
}

void SnapshotClient::on_manifest(const Message& msg) {
  if (phase_ != Phase::kManifest || msg.from != peer_) return;
  const auto resp = decode_resp(msg.payload(), /*with_index=*/false);
  if (!resp.has_value() || resp->height != height_) return;
  if (!resp->ok()) {
    fail(errc::kSnapshotUnavailable, "peer does not serve this height");
    return;
  }
  auto digests = hooks_.accept_manifest(height_, resp->data);
  if (!digests.ok()) {
    fail(digests.error().code, digests.error().message);
    return;
  }
  expected_ = std::move(digests).value();
  if (expected_.empty()) {
    fail(errc::kSnapshotBadManifest, "manifest commits to zero chunks");
    return;
  }
  chunks_.assign(expected_.size(), Bytes{});
  inflight_.assign(expected_.size(), std::nullopt);
  have_.assign(expected_.size(), false);
  received_ = 0;
  next_unrequested_ = 0;
  phase_ = Phase::kChunks;
  fill_window();
}

void SnapshotClient::on_chunk(const Message& msg) {
  if (phase_ != Phase::kChunks || msg.from != peer_) return;
  const auto resp = decode_resp(msg.payload(), /*with_index=*/true);
  if (!resp.has_value() || resp->height != height_ ||
      resp->index >= have_.size()) {
    return;
  }
  const std::uint32_t index = resp->index;
  if (have_[index]) return;  // duplicate after a retried request
  auto& slot = inflight_[index];
  if (!slot.has_value()) return;  // stale reply from an abandoned sync
  if (resp->status == kRespBusy) {
    // The server shed the serve job and said so. Defer the re-request with
    // linear backoff instead of charging the retry budget — that budget
    // exists to bound loss/corruption, and an honest "busy" is neither. A
    // persistently busy server still can't pin us forever: consecutive
    // deferrals are capped on their own.
    ++slot->busy_defers;
    if (slot->busy_defers > config_.max_retries * 4) {
      fail(errc::kSnapshotServerBusy, "server persistently busy for chunk " +
                                          std::to_string(index));
      return;
    }
    slot->resend_at = network_.clock().now() +
                      config_.backoff * static_cast<Tick>(slot->busy_defers);
    return;
  }
  if (!resp->ok()) {
    fail(errc::kSnapshotUnavailable,
         "peer refused chunk " + std::to_string(index));
    return;
  }
  if (hooks_.chunk_digest(index, resp->data) != expected_[index]) {
    // Corrupted in flight (or a lying peer): never installed, re-requested
    // like a loss.
    network_.note_snapshot_chunk_rejected();
    retry(*slot, [this, index] { request_chunk(index); });
    return;
  }
  network_.note_snapshot_chunk_verified();
  chunks_[index] = std::move(resp->data);
  have_[index] = true;
  slot.reset();
  ++received_;
  if (received_ < have_.size()) {
    fill_window();
    return;
  }
  // All chunks verified: install, then fetch the block suffix.
  auto replay_from = hooks_.install(std::move(chunks_));
  chunks_.clear();
  if (!replay_from.ok()) {
    fail(replay_from.error().code, replay_from.error().message);
    return;
  }
  replay_from_ = replay_from.value();
  phase_ = Phase::kBlocks;
  single_ = Inflight{};
  send_blocks_req();
}

void SnapshotClient::on_blocks(const Message& msg) {
  if (phase_ != Phase::kBlocks || msg.from != peer_) return;
  const auto resp = decode_resp(msg.payload(), /*with_index=*/false);
  if (!resp.has_value() || resp->height != replay_from_) return;
  if (!resp->ok()) {
    fail(errc::kSnapshotUnavailable, "peer does not serve the block suffix");
    return;
  }
  if (Status s = hooks_.replay(resp->data); !s.ok()) {
    fail(s.error().code, s.error().message);
    return;
  }
  phase_ = Phase::kDone;
  network_.note_snapshot_sync(true);
}

bool SnapshotClient::handle(const Message& msg) {
  if (msg.topic == kSnapshotManifestResp) {
    on_manifest(msg);
    return true;
  }
  if (msg.topic == kSnapshotChunkResp) {
    on_chunk(msg);
    return true;
  }
  if (msg.topic == kSnapshotBlocksResp) {
    on_blocks(msg);
    return true;
  }
  return false;
}

void SnapshotClient::tick() {
  const Tick now = network_.clock().now();
  const auto timed_out = [&](const Inflight& slot) {
    if (slot.resend_at >= 0) return false;  // parked on busy backoff
    const Tick deadline =
        slot.sent_at + config_.request_timeout +
        static_cast<Tick>(slot.retries) * config_.backoff;
    return now > deadline;
  };
  switch (phase_) {
    case Phase::kManifest:
      if (timed_out(single_)) retry(single_, [this] { send_manifest_req(); });
      break;
    case Phase::kChunks:
      for (std::uint32_t i = 0; i < inflight_.size(); ++i) {
        auto& slot = inflight_[i];
        if (!slot.has_value()) continue;
        if (slot->resend_at >= 0 && now >= slot->resend_at) {
          // Busy backoff elapsed: re-send without touching the retry budget.
          request_chunk(i);
          continue;
        }
        if (!timed_out(*slot)) continue;
        retry(*slot, [this, i] { request_chunk(i); });
        if (phase_ == Phase::kFailed) return;
      }
      break;
    case Phase::kBlocks:
      if (timed_out(single_)) retry(single_, [this] { send_blocks_req(); });
      break;
    default:
      break;
  }
}

}  // namespace mv::net
