#include "net/gossip.h"

namespace mv::net {

namespace {

std::uint64_t rumor_key(const Bytes& payload) {
  return crypto::digest_prefix64(crypto::sha256(payload));
}

/// Shard-tagged rumors travel framed — fixed-width shard id, then the raw
/// payload — on their own topic so untagged traffic needs no parsing.
Bytes frame_sharded(std::uint32_t shard, const Bytes& payload) {
  ByteWriter w;
  w.reserve(sizeof(std::uint32_t) + payload.size());
  w.u32(shard);
  w.raw(payload);
  return w.take();
}

constexpr char kTopic[] = "gossip";
constexpr char kShardTopic[] = "gossip.shard";

}  // namespace

Gossip::Gossip(Network& network, Rng rng, std::size_t fanout, DeliverFn deliver,
               std::size_t relay_high_water, JobQueue* queue)
    : network_(network),
      rng_(rng),
      fanout_(fanout),
      deliver_(std::move(deliver)),
      relay_high_water_(relay_high_water),
      queue_(queue) {}

NodeId Gossip::join() { return join({}); }

NodeId Gossip::join(std::vector<std::uint32_t> interests) {
  const NodeId id =
      network_.add_node([this](const Message& msg) { on_message(msg); });
  members_.push_back(id);
  if (!interests.empty()) {
    interests_[id].insert(interests.begin(), interests.end());
  }
  return id;
}

void Gossip::publish(NodeId origin, const Bytes& payload) {
  if (mark_seen(origin, payload)) {
    deliver_(origin, payload);
    relay(origin, std::make_shared<const Bytes>(payload), std::nullopt);
  }
}

void Gossip::publish(NodeId origin, std::uint32_t shard, const Bytes& payload) {
  auto framed = std::make_shared<const Bytes>(frame_sharded(shard, payload));
  if (mark_seen(origin, *framed)) {
    if (interested(origin, shard)) deliver_(origin, payload);
    relay(origin, framed, shard);
  }
}

void Gossip::on_message(const Message& msg) {
  const bool sharded = msg.topic == kShardTopic;
  if (!sharded && msg.topic != kTopic) return;
  {
    // One of msg.from's relays just landed: release its in-flight slot.
    std::lock_guard<std::mutex> lock(relay_mu_);
    if (const auto it = inflight_.find(msg.from);
        it != inflight_.end() && it->second > 0) {
      --it->second;
    }
  }
  if (!mark_seen(msg.to, msg.payload())) return;
  if (!sharded) {
    deliver_(msg.to, msg.payload());
    relay(msg.to, msg.payload_buf, std::nullopt);
    return;
  }
  ByteReader reader(msg.payload());
  const auto shard = reader.u32();
  if (!shard.ok()) return;  // malformed frame: drop, don't relay
  if (interested(msg.to, shard.value())) {
    const auto inner = reader.raw(reader.remaining());
    deliver_(msg.to, inner.value());
  }
  relay(msg.to, msg.payload_buf, shard.value());
}

void Gossip::relay(NodeId from, const std::shared_ptr<const Bytes>& payload,
                   std::optional<std::uint32_t> shard) {
  if (queue_ == nullptr) {
    relay_now(from, payload, shard);
    return;
  }
  // Offloaded hop: the fan-out competes with other traffic classes under
  // the queue's scheduler. submit() returning false means the hop was shed
  // at admission (kGossipRelay over a ceiling) — the rumor still reached
  // this node; only its onward copies are withheld, which the epidemic
  // redundancy absorbs exactly like a backpressure drop.
  queue_->submit(JobClass::kGossipRelay, [this, from, payload, shard] {
    relay_now(from, payload, shard);
  });
}

void Gossip::relay_now(NodeId from, const std::shared_ptr<const Bytes>& payload,
                       std::optional<std::uint32_t> shard) {
  std::lock_guard<std::mutex> lock(relay_mu_);
  // Shard-tagged rumors only ever travel inside the interested subset: the
  // candidate list shrinks to it, so uninterested nodes never see (or pay
  // for) other worlds' traffic.
  std::vector<NodeId> candidates;
  candidates.reserve(members_.size());
  for (const NodeId m : members_) {
    if (!shard || interested(m, *shard)) candidates.push_back(m);
  }
  const char* topic = shard ? kShardTopic : kTopic;
  if (candidates.size() <= 1) return;
  const std::size_t peers = std::min(fanout_, candidates.size() - 1);
  if (peers == candidates.size() - 1) {
    // Flood mode: relay to every peer — guarantees coverage on a connected
    // lossless network at the cost of O(n^2) messages. The coverage
    // guarantee is the point of this mode, so backpressure does not apply.
    for (const NodeId peer : candidates) {
      if (peer != from) network_.send(from, peer, topic, payload);
    }
    return;
  }
  // Backpressure (epidemic mode only): a node with too many undelivered
  // relays in flight defers to the redundancy of the mesh instead of
  // queueing more.
  std::size_t budget = peers;
  if (relay_high_water_ != 0) {
    const std::size_t inflight = inflight_[from];
    budget = inflight < relay_high_water_
                 ? std::min(peers, relay_high_water_ - inflight)
                 : 0;
  }
  if (budget < peers) network_.note_backpressure_drop(peers - budget);
  if (budget == 0) return;
  const auto picks = rng_.sample_indices(candidates.size(),
                                         std::min(fanout_ + 1, candidates.size()));
  std::size_t sent = 0;
  for (const auto idx : picks) {
    if (sent == budget) break;
    const NodeId peer = candidates[idx];
    if (peer == from) continue;
    if (network_.send(from, peer, topic, payload)) ++inflight_[from];
    ++sent;
  }
}

bool Gossip::mark_seen(NodeId node, const Bytes& payload) {
  return seen_[rumor_key(payload)].insert(node).second;
}

bool Gossip::interested(NodeId node, std::uint32_t shard) const {
  const auto it = interests_.find(node);
  if (it == interests_.end() || it->second.empty()) return true;
  return it->second.contains(shard);
}

double Gossip::coverage(const Bytes& payload) const {
  if (members_.empty()) return 0.0;
  const auto it = seen_.find(rumor_key(payload));
  if (it == seen_.end()) return 0.0;
  return static_cast<double>(it->second.size()) /
         static_cast<double>(members_.size());
}

double Gossip::coverage(std::uint32_t shard, const Bytes& payload) const {
  std::size_t audience = 0;
  for (const NodeId m : members_) {
    if (interested(m, shard)) ++audience;
  }
  if (audience == 0) return 0.0;
  const auto it = seen_.find(rumor_key(frame_sharded(shard, payload)));
  if (it == seen_.end()) return 0.0;
  return static_cast<double>(it->second.size()) /
         static_cast<double>(audience);
}

}  // namespace mv::net
