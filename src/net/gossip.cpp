#include "net/gossip.h"

namespace mv::net {

namespace {
std::uint64_t rumor_key(const Bytes& payload) {
  return crypto::digest_prefix64(crypto::sha256(payload));
}
}  // namespace

Gossip::Gossip(Network& network, Rng rng, std::size_t fanout, DeliverFn deliver,
               std::size_t relay_high_water, JobQueue* queue)
    : network_(network),
      rng_(rng),
      fanout_(fanout),
      deliver_(std::move(deliver)),
      relay_high_water_(relay_high_water),
      queue_(queue) {}

NodeId Gossip::join() {
  const NodeId id =
      network_.add_node([this](const Message& msg) { on_message(msg); });
  members_.push_back(id);
  return id;
}

void Gossip::publish(NodeId origin, const Bytes& payload) {
  if (mark_seen(origin, payload)) {
    deliver_(origin, payload);
    relay(origin, std::make_shared<const Bytes>(payload));
  }
}

void Gossip::on_message(const Message& msg) {
  if (msg.topic != "gossip") return;
  {
    // One of msg.from's relays just landed: release its in-flight slot.
    std::lock_guard<std::mutex> lock(relay_mu_);
    if (const auto it = inflight_.find(msg.from);
        it != inflight_.end() && it->second > 0) {
      --it->second;
    }
  }
  if (mark_seen(msg.to, msg.payload())) {
    deliver_(msg.to, msg.payload());
    relay(msg.to, msg.payload_buf);
  }
}

void Gossip::relay(NodeId from, const std::shared_ptr<const Bytes>& payload) {
  if (queue_ == nullptr) {
    relay_now(from, payload);
    return;
  }
  // Offloaded hop: the fan-out competes with other traffic classes under
  // the queue's scheduler. submit() returning false means the hop was shed
  // at admission (kGossipRelay over a ceiling) — the rumor still reached
  // this node; only its onward copies are withheld, which the epidemic
  // redundancy absorbs exactly like a backpressure drop.
  queue_->submit(JobClass::kGossipRelay,
                 [this, from, payload] { relay_now(from, payload); });
}

void Gossip::relay_now(NodeId from, const std::shared_ptr<const Bytes>& payload) {
  std::lock_guard<std::mutex> lock(relay_mu_);
  if (members_.size() <= 1) return;
  const std::size_t peers = std::min(fanout_, members_.size() - 1);
  if (peers == members_.size() - 1) {
    // Flood mode: relay to every peer — guarantees coverage on a connected
    // lossless network at the cost of O(n^2) messages. The coverage
    // guarantee is the point of this mode, so backpressure does not apply.
    for (const NodeId peer : members_) {
      if (peer != from) network_.send(from, peer, "gossip", payload);
    }
    return;
  }
  // Backpressure (epidemic mode only): a node with too many undelivered
  // relays in flight defers to the redundancy of the mesh instead of
  // queueing more.
  std::size_t budget = peers;
  if (relay_high_water_ != 0) {
    const std::size_t inflight = inflight_[from];
    budget = inflight < relay_high_water_
                 ? std::min(peers, relay_high_water_ - inflight)
                 : 0;
  }
  if (budget < peers) network_.note_backpressure_drop(peers - budget);
  if (budget == 0) return;
  const auto picks = rng_.sample_indices(members_.size(), std::min(fanout_ + 1, members_.size()));
  std::size_t sent = 0;
  for (const auto idx : picks) {
    if (sent == budget) break;
    const NodeId peer = members_[idx];
    if (peer == from) continue;
    if (network_.send(from, peer, "gossip", payload)) ++inflight_[from];
    ++sent;
  }
}

bool Gossip::mark_seen(NodeId node, const Bytes& payload) {
  return seen_[rumor_key(payload)].insert(node).second;
}

double Gossip::coverage(const Bytes& payload) const {
  if (members_.empty()) return 0.0;
  const auto it = seen_.find(rumor_key(payload));
  if (it == seen_.end()) return 0.0;
  return static_cast<double>(it->second.size()) /
         static_cast<double>(members_.size());
}

}  // namespace mv::net
