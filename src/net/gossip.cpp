#include "net/gossip.h"

namespace mv::net {

namespace {
std::uint64_t rumor_key(const Bytes& payload) {
  return crypto::digest_prefix64(crypto::sha256(payload));
}
}  // namespace

Gossip::Gossip(Network& network, Rng rng, std::size_t fanout, DeliverFn deliver)
    : network_(network),
      rng_(rng),
      fanout_(fanout),
      deliver_(std::move(deliver)) {}

NodeId Gossip::join() {
  const NodeId id =
      network_.add_node([this](const Message& msg) { on_message(msg); });
  members_.push_back(id);
  return id;
}

void Gossip::publish(NodeId origin, const Bytes& payload) {
  if (mark_seen(origin, payload)) {
    deliver_(origin, payload);
    relay(origin, std::make_shared<const Bytes>(payload));
  }
}

void Gossip::on_message(const Message& msg) {
  if (msg.topic != "gossip") return;
  if (mark_seen(msg.to, msg.payload())) {
    deliver_(msg.to, msg.payload());
    relay(msg.to, msg.payload_buf);
  }
}

void Gossip::relay(NodeId from, const std::shared_ptr<const Bytes>& payload) {
  if (members_.size() <= 1) return;
  const std::size_t peers = std::min(fanout_, members_.size() - 1);
  if (peers == members_.size() - 1) {
    // Flood mode: relay to every peer — guarantees coverage on a connected
    // lossless network at the cost of O(n^2) messages.
    for (const NodeId peer : members_) {
      if (peer != from) network_.send(from, peer, "gossip", payload);
    }
    return;
  }
  const auto picks = rng_.sample_indices(members_.size(), std::min(fanout_ + 1, members_.size()));
  std::size_t sent = 0;
  for (const auto idx : picks) {
    if (sent == peers) break;
    const NodeId peer = members_[idx];
    if (peer == from) continue;
    network_.send(from, peer, "gossip", payload);
    ++sent;
  }
}

bool Gossip::mark_seen(NodeId node, const Bytes& payload) {
  return seen_[rumor_key(payload)].insert(node).second;
}

double Gossip::coverage(const Bytes& payload) const {
  if (members_.empty()) return 0.0;
  const auto it = seen_.find(rumor_key(payload));
  if (it == seen_.end()) return 0.0;
  return static_cast<double>(it->second.size()) /
         static_cast<double>(members_.size());
}

}  // namespace mv::net
