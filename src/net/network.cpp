#include "net/network.h"

#include <cmath>

namespace mv::net {

Network::Network(SimClock& clock, Rng rng, LinkParams defaults)
    : clock_(clock), rng_(rng), defaults_(defaults) {}

NodeId Network::add_node(Handler handler) {
  const NodeId id(nodes_.size());
  nodes_.push_back(std::move(handler));
  return id;
}

std::vector<NodeId> Network::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) ids.emplace_back(i);
  return ids;
}

void Network::set_link(NodeId from, NodeId to, LinkParams params) {
  links_[{from, to}] = params;
}

const LinkParams& Network::link(NodeId from, NodeId to) const {
  const auto it = links_.find({from, to});
  return it != links_.end() ? it->second : defaults_;
}

void Network::set_group(NodeId node, int group) { groups_[node] = group; }

void Network::heal() { groups_.clear(); }

bool Network::send(NodeId from, NodeId to, std::string topic, Bytes payload) {
  return send(from, to, std::move(topic),
              std::make_shared<const Bytes>(std::move(payload)));
}

bool Network::send(NodeId from, NodeId to, std::string topic,
                   std::shared_ptr<const Bytes> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (to.value() >= nodes_.size()) {
    // Unknown destination: refuse and count rather than indexing out of
    // bounds at delivery time.
    ++stats_.invalid_dest;
    return false;
  }
  ++stats_.sent;
  stats_.bytes_sent += payload ? payload->size() : 0;

  const auto gfrom = groups_.find(from);
  const auto gto = groups_.find(to);
  const int group_from = gfrom == groups_.end() ? 0 : gfrom->second;
  const int group_to = gto == groups_.end() ? 0 : gto->second;
  if (group_from != group_to) {
    ++stats_.partitioned;
    return false;
  }

  const LinkParams& lp = link(from, to);
  if (lp.drop_rate > 0.0 && rng_.chance(lp.drop_rate)) {
    ++stats_.dropped;
    return false;
  }

  Message msg;
  msg.from = from;
  msg.to = to;
  msg.topic = std::move(topic);
  msg.payload_buf = std::move(payload);
  msg.sent_at = clock_.now();
  const double delay = lp.base_latency + (lp.jitter > 0.0 ? rng_.uniform(0.0, lp.jitter) : 0.0);
  msg.deliver_at = clock_.now() + std::max<Tick>(1, static_cast<Tick>(std::llround(delay)));
  queue_.push(Pending{std::move(msg), seq_++});
  return true;
}

void Network::broadcast(NodeId from, const std::string& topic,
                        const Bytes& payload) {
  broadcast(from, topic, std::make_shared<const Bytes>(payload));
}

void Network::broadcast(NodeId from, const std::string& topic,
                        std::shared_ptr<const Bytes> payload) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeId to(i);
    if (to == from) continue;
    send(from, to, topic, payload);
  }
}

void Network::step() {
  for (;;) {
    Pending p;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty() || queue_.top().msg.deliver_at > clock_.now()) return;
      // Move out before pop: the handler may enqueue new messages. Moving
      // from top() is safe because the element is removed immediately and
      // the heap comparator reads only deliver_at/seq, which a move leaves
      // intact.
      p = std::move(const_cast<Pending&>(queue_.top()));
      queue_.pop();
      ++stats_.delivered;
    }
    // The lock is released across the handler call: handlers send (which
    // re-locks) and may hand work to JobQueue workers that send concurrently.
    nodes_[p.msg.to.value()](p.msg);
  }
}

Tick Network::run_until_idle(Tick max_ticks) {
  Tick advanced = 0;
  step();
  while (!idle() && advanced < max_ticks) {
    clock_.advance();
    ++advanced;
    step();
  }
  return advanced;
}

}  // namespace mv::net
