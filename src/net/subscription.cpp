#include "net/subscription.h"

#include <algorithm>
#include <chrono>

namespace mv::net {

// ------------------------------------------------------------------ codecs

Bytes SubscriptionRequest::encode() const {
  ByteWriter w;
  w.u32(version);
  w.i64(from_height);
  w.u8(headers ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(accounts.size()));
  for (const auto a : accounts) w.u64(a);
  w.u32(static_cast<std::uint32_t>(stores.size()));
  for (const auto& s : stores) w.str(s);
  return w.take();
}

std::optional<SubscriptionRequest> SubscriptionRequest::decode(
    const Bytes& payload) {
  ByteReader r(payload);
  SubscriptionRequest req;
  const auto version = r.u32();
  const auto from = r.i64();
  const auto headers = r.u8();
  if (!version.ok() || !from.ok() || !headers.ok() || headers.value() > 1) {
    return std::nullopt;
  }
  req.version = version.value();
  req.from_height = from.value();
  req.headers = headers.value() == 1;
  const auto n_accounts = r.u32();
  // Each declared element costs at least one wire byte; a count beyond the
  // remaining payload is a forged length, rejected before any allocation.
  if (!n_accounts.ok() || n_accounts.value() > r.remaining()) return std::nullopt;
  req.accounts.reserve(n_accounts.value());
  for (std::uint32_t i = 0; i < n_accounts.value(); ++i) {
    const auto a = r.u64();
    if (!a.ok()) return std::nullopt;
    req.accounts.push_back(a.value());
  }
  const auto n_stores = r.u32();
  if (!n_stores.ok() || n_stores.value() > r.remaining()) return std::nullopt;
  req.stores.reserve(n_stores.value());
  for (std::uint32_t i = 0; i < n_stores.value(); ++i) {
    auto s = r.str();
    if (!s.ok()) return std::nullopt;
    req.stores.push_back(std::move(s).value());
  }
  if (!r.exhausted()) return std::nullopt;
  return req;
}

Bytes SubscriptionResponse::encode() const {
  ByteWriter w;
  w.u32(version);
  w.str(code);
  w.i64(earliest);
  w.i64(tip);
  return w.take();
}

std::optional<SubscriptionResponse> SubscriptionResponse::decode(
    const Bytes& payload) {
  ByteReader r(payload);
  SubscriptionResponse resp;
  const auto version = r.u32();
  auto code = r.str();
  const auto earliest = r.i64();
  const auto tip = r.i64();
  if (!version.ok() || !code.ok() || !earliest.ok() || !tip.ok() ||
      !r.exhausted()) {
    return std::nullopt;
  }
  resp.version = version.value();
  resp.code = std::move(code).value();
  resp.earliest = earliest.value();
  resp.tip = tip.value();
  return resp;
}

namespace {

Bytes encode_ack(std::int64_t height) {
  ByteWriter w;
  w.i64(height);
  return w.take();
}

std::optional<std::int64_t> decode_ack(const Bytes& payload) {
  ByteReader r(payload);
  const auto height = r.i64();
  if (!height.ok() || !r.exhausted()) return std::nullopt;
  return height.value();
}

}  // namespace

Bytes encode_sub_ack(std::int64_t height) { return encode_ack(height); }

// ------------------------------------------------------- SubscriptionServer

bool SubscriptionServer::handle(const Message& msg) {
  if (msg.topic == kSubSubscribeReq) {
    on_subscribe(msg);
    return true;
  }
  if (msg.topic == kSubUnsubscribeReq) {
    on_unsubscribe(msg);
    return true;
  }
  if (msg.topic == kSubAck) {
    on_ack(msg);
    return true;
  }
  return false;
}

void SubscriptionServer::on_subscribe(const Message& msg) {
  const auto req = SubscriptionRequest::decode(msg.payload());
  if (!req.has_value()) return;  // malformed: drop, like other protocols

  SubscriptionResponse resp;
  // Replayed entries, gathered under the lock, sent after it (shared
  // payload pointers keep this copy-free).
  std::vector<std::pair<std::int64_t, std::shared_ptr<const Bytes>>> replay;
  {
    std::lock_guard<std::mutex> lock(mu_);
    resp.earliest = retained_.empty() ? -1 : retained_.front().first;
    resp.tip = latest_;
    if (req->version != kSubWireVersion) {
      resp.code = errc::kSubBadVersion;
      ++rejected_version_;
    } else if (req->from_height >= 0 && req->from_height <= latest_ &&
               (retained_.empty() || retained_.front().first > req->from_height)) {
      // The client needs heights the ring no longer holds: it must bootstrap
      // from a snapshot instead. `earliest` tells it where pushes resume.
      resp.code = errc::kSubStaleFrom;
      ++rejected_stale_;
    } else {
      Subscriber sub;
      sub.headers = req->headers;
      sub.accounts.insert(req->accounts.begin(), req->accounts.end());
      sub.stores.insert(req->stores.begin(), req->stores.end());
      // A resubscribe replaces the interest set and forgives the old unacked
      // backlog — the client proved liveness by speaking to us again.
      subs_[msg.from] = std::move(sub);
      ++subscribed_;
      if (req->from_height >= 0) {
        for (const auto& [h, payload] : retained_) {
          if (h < req->from_height) continue;
          replay.emplace_back(h, payload);
        }
        auto& registered = subs_[msg.from];
        registered.unacked += replay.size();
        resync_pushes_ += replay.size();
        pushes_sent_ += replay.size();
      }
    }
  }
  (void)network_.send(self_, msg.from, kSubSubscribeResp, resp.encode());
  for (auto& [h, payload] : replay) {
    (void)network_.send(self_, msg.from, kSubPush, std::move(payload));
  }
}

void SubscriptionServer::on_unsubscribe(const Message& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (subs_.erase(msg.from) != 0) ++unsubscribed_;
}

void SubscriptionServer::on_ack(const Message& msg) {
  const auto height = decode_ack(msg.payload());
  if (!height.has_value()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(msg.from);
  if (it == subs_.end()) return;  // ack from an evicted/removed subscriber
  ++acks_;
  // Guarded: acks for pushes sent before a resubscribe reset would otherwise
  // underflow the fresh counter.
  if (it->second.unacked > 0) --it->second.unacked;
}

void SubscriptionServer::publish(std::int64_t height,
                                 std::shared_ptr<const Bytes> payload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    retained_.emplace_back(height, payload);
    while (retained_.size() > config_.retain) retained_.pop_front();
    latest_ = height;
    ++commits_published_;
  }
  if (queue_ != nullptr) {
    // kClientQuery is the lowest lane: under overload subscriber fan-out is
    // shed before anything consensus needs. Dropping the job drops this
    // commit's pushes entirely; subscribers recover via the retained ring.
    const bool admitted = queue_->submit(
        JobClass::kClientQuery,
        [this, payload = std::move(payload)] { fan_out(payload); });
    if (!admitted) {
      std::lock_guard<std::mutex> lock(mu_);
      ++commits_shed_;
      network_.note_subscription_shed();
    }
    return;
  }
  fan_out(payload);
}

void SubscriptionServer::fan_out(const std::shared_ptr<const Bytes>& payload) {
  const auto t0 = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = subs_.begin(); it != subs_.end();) {
    auto& sub = it->second;
    if (config_.per_client_cap != 0 && sub.unacked >= config_.per_client_cap) {
      // The subscriber is not draining its pushes; keeping it would grow an
      // unbounded per-client backlog. It can resubscribe once it recovers.
      it = subs_.erase(it);
      ++evicted_slow_;
      network_.note_subscriber_evicted();
      continue;
    }
    (void)network_.send(self_, it->first, kSubPush, payload);
    ++sub.unacked;
    ++pushes_sent_;
    ++it;
  }
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  fanout_stats_.add(us);
  fanout_window_.add(us);
}

std::vector<std::uint64_t> SubscriptionServer::account_interests() const {
  std::set<std::uint64_t> all;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [node, sub] : subs_) {
    all.insert(sub.accounts.begin(), sub.accounts.end());
  }
  return {all.begin(), all.end()};
}

std::vector<std::string> SubscriptionServer::store_interests() const {
  std::set<std::string> all;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [node, sub] : subs_) {
    all.insert(sub.stores.begin(), sub.stores.end());
  }
  return {all.begin(), all.end()};
}

std::size_t SubscriptionServer::subscriber_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subs_.size();
}

bool SubscriptionServer::subscribed(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return subs_.count(node) != 0;
}

Status SubscriptionServer::drop(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (subs_.erase(node) == 0) {
    return Status::fail(errc::kSubNotSubscribed, "node holds no subscription");
  }
  ++unsubscribed_;
  return {};
}

SubscriptionStats SubscriptionServer::stats() const {
  SubscriptionStats out;
  std::lock_guard<std::mutex> lock(mu_);
  out.subscribers = subs_.size();
  out.subscribed = subscribed_;
  out.rejected_stale = rejected_stale_;
  out.rejected_version = rejected_version_;
  out.unsubscribed = unsubscribed_;
  out.commits_published = commits_published_;
  out.commits_shed = commits_shed_;
  out.pushes_sent = pushes_sent_;
  out.resync_pushes = resync_pushes_;
  out.evicted_slow = evicted_slow_;
  out.acks = acks_;
  out.fanout_mean_us = fanout_stats_.mean();
  out.fanout_max_us = fanout_stats_.max();
  out.fanout_p50_us = fanout_window_.percentile(50.0);
  out.fanout_p99_us = fanout_window_.percentile(99.0);
  return out;
}

}  // namespace mv::net
