// Streaming subscription read path: server-side hub over the simulated
// network.
//
// Production metaverse read traffic is subscription-shaped, not poll-shaped:
// avatars watch their accounts, dashboards watch headers and proposals.
// Instead of clients polling prove_account/header endpoints, they register
// interest once and the chain pushes every commit to them.
//
// This module is the transport-side hub, payload-agnostic like
// net/snapshot_transfer.h: what a push payload *means* (header + account
// proofs + store events) is supplied by the ledger-side glue
// (ledger/subscription.h). The hub owns:
//
//   - the subscriber registry (per-node interest sets: headers, account
//     keys, store names) maintained from subscribe/unsubscribe messages;
//   - zero-copy fan-out: one serialized payload per commit, shared across
//     every subscriber via the network's shared_ptr<const Bytes> send path —
//     never re-encoded or copied per subscriber;
//   - flow control: each subscriber acks pushes; one whose unacked backlog
//     reaches the per-client cap is evicted at the next push (counted), so a
//     slow consumer bounds its queue instead of growing it without limit;
//   - a retained ring of recent pushes: a (re)subscribe with from_height
//     inside the ring is resynced from it, which is how a client that lost
//     pushes (shed fan-out, partition, loss) recovers header continuity;
//   - load isolation: with a JobQueue configured, fan-outs run as
//     JobClass::kClientQuery jobs — the first class shed under overload — so
//     a subscriber storm can never starve consensus. A shed fan-out drops
//     that commit's pushes entirely; subscribers see the height gap and
//     resubscribe.
//
// Wire protocol and trust argument: DESIGN.md §11.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/job_queue.h"
#include "common/result.h"
#include "common/stats.h"
#include "net/network.h"

namespace mv::net {

// Wire topics. Push payloads are opaque to this layer; everything else is
// encoded by the codecs below.
inline constexpr const char* kSubSubscribeReq = "sub.subscribe";
inline constexpr const char* kSubSubscribeResp = "sub.subscribe_resp";
inline constexpr const char* kSubUnsubscribeReq = "sub.unsubscribe";
inline constexpr const char* kSubPush = "sub.push";
inline constexpr const char* kSubAck = "sub.ack";

/// Subscription wire version; a request with any other version is answered
/// with errc::kSubBadVersion instead of being silently dropped.
inline constexpr std::uint32_t kSubWireVersion = 1;

/// Encode a kSubAck payload acknowledging the push for `height`; clients ack
/// every push they consume so the server's per-client backlog drains.
[[nodiscard]] Bytes encode_sub_ack(std::int64_t height);

/// What a client asks to watch. A node holds at most one subscription; a
/// repeated subscribe replaces the previous interest set (that is also the
/// resync path after a detected gap).
struct SubscriptionRequest {
  std::uint32_t version = kSubWireVersion;
  /// First height the client needs. Heights [from_height, server tip] still
  /// in the retained ring are replayed at subscribe time; -1 = no catch-up,
  /// start with the next commit.
  std::int64_t from_height = -1;
  bool headers = false;                  ///< push every committed header
  std::vector<std::uint64_t> accounts;   ///< crypto::Address values to watch
  std::vector<std::string> stores;       ///< contract stores (e.g. proposals)

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static std::optional<SubscriptionRequest> decode(const Bytes&);
};

/// Server's answer to a subscribe. `code` is empty on success, otherwise an
/// errc constant (kSubBadVersion, kSubStaleFrom). `earliest` and `tip` bound
/// what the retained ring can still resync — a stale client uses them to
/// decide to bootstrap from a snapshot instead.
struct SubscriptionResponse {
  std::uint32_t version = kSubWireVersion;
  std::string code;
  std::int64_t earliest = -1;  ///< oldest height the ring can replay
  std::int64_t tip = -1;       ///< newest published height

  [[nodiscard]] bool ok() const { return code.empty(); }
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static std::optional<SubscriptionResponse> decode(const Bytes&);
};

struct SubscriptionConfig {
  /// Unacked pushes a subscriber may accumulate; reaching the cap evicts it
  /// at the next push (0 = unlimited, never evict).
  std::size_t per_client_cap = 64;
  /// Retained pushes for resync; pair with ChainConfig::state_retention so
  /// proofs and pushes lag the tip together.
  std::size_t retain = 8;
};

/// Observability snapshot — subscriber counts, push accounting, and fan-out
/// latency percentiles (recent window, common/stats.h RecentWindow).
struct SubscriptionStats {
  std::size_t subscribers = 0;        ///< registered right now
  std::uint64_t subscribed = 0;       ///< subscribe requests accepted
  std::uint64_t rejected_stale = 0;   ///< from_height below the ring
  std::uint64_t rejected_version = 0;
  std::uint64_t unsubscribed = 0;     ///< explicit unsubscribes honored
  std::uint64_t commits_published = 0;
  std::uint64_t commits_shed = 0;     ///< fan-out jobs shed by the queue
  std::uint64_t pushes_sent = 0;      ///< per-subscriber push messages
  std::uint64_t resync_pushes = 0;    ///< retained pushes replayed
  std::uint64_t evicted_slow = 0;     ///< subscribers dropped at the cap
  std::uint64_t acks = 0;
  double fanout_mean_us = 0.0;        ///< whole-commit fan-out wall time
  double fanout_max_us = 0.0;
  double fanout_p50_us = 0.0;
  double fanout_p99_us = 0.0;
};

/// The hub. Thread contract: handle() runs on the simulation thread
/// (delivery); publish()'s fan-out may run on a JobQueue worker; every
/// shared structure is guarded by one internal mutex. Queued fan-out jobs
/// reference this server: drain() the queue (or destroy it, abandoning
/// them) before destroying the server.
class SubscriptionServer {
 public:
  explicit SubscriptionServer(Network& network, SubscriptionConfig config = {},
                              JobQueue* queue = nullptr)
      : network_(network), config_(config), queue_(queue) {}

  void bind(NodeId self) { self_ = self; }

  /// Dispatch one delivered message; true when the topic was ours.
  bool handle(const Message& msg);

  /// Fan one commit's serialized payload out to every subscriber. The
  /// payload is retained for resync and shared — every subscriber's message
  /// references the same buffer. Heights must be published in ascending
  /// order (the ledger commit hook guarantees this).
  void publish(std::int64_t height, std::shared_ptr<const Bytes> payload);

  /// Union of subscribed account keys / store names right now — the payload
  /// builder asks for these at commit time so the push carries proofs only
  /// for accounts someone actually watches.
  [[nodiscard]] std::vector<std::uint64_t> account_interests() const;
  [[nodiscard]] std::vector<std::string> store_interests() const;

  [[nodiscard]] std::size_t subscriber_count() const;
  [[nodiscard]] bool subscribed(NodeId node) const;

  /// Server-side removal (admin/eviction path of the ClientApi facade).
  [[nodiscard]] Status drop(NodeId node);

  [[nodiscard]] SubscriptionStats stats() const;

 private:
  struct Subscriber {
    bool headers = false;
    std::set<std::uint64_t> accounts;
    std::set<std::string> stores;
    std::size_t unacked = 0;  ///< pushes sent and not yet acked
  };

  void on_subscribe(const Message& msg);
  void on_unsubscribe(const Message& msg);
  void on_ack(const Message& msg);
  /// The fan-out itself; runs inline or as a kClientQuery job.
  void fan_out(const std::shared_ptr<const Bytes>& payload);

  Network& network_;
  SubscriptionConfig config_;
  JobQueue* queue_;
  NodeId self_;

  /// Guards subs_, retained_, latest_, and the stats below: handle() runs at
  /// delivery time while fan_out may run on a queue worker.
  mutable std::mutex mu_;
  std::map<NodeId, Subscriber> subs_;
  /// Recent pushes, oldest first, heights contiguous; capped at
  /// config.retain.
  std::deque<std::pair<std::int64_t, std::shared_ptr<const Bytes>>> retained_;
  std::int64_t latest_ = -1;  ///< newest published height

  std::uint64_t subscribed_ = 0;
  std::uint64_t rejected_stale_ = 0;
  std::uint64_t rejected_version_ = 0;
  std::uint64_t unsubscribed_ = 0;
  std::uint64_t commits_published_ = 0;
  std::uint64_t commits_shed_ = 0;
  std::uint64_t pushes_sent_ = 0;
  std::uint64_t resync_pushes_ = 0;
  std::uint64_t evicted_slow_ = 0;
  std::uint64_t acks_ = 0;
  RunningStats fanout_stats_;
  RecentWindow fanout_window_{128};
};

}  // namespace mv::net
