// Typed publish/subscribe bus.
//
// Modules are deliberately decoupled (DESIGN.md S15: interchangeable modules);
// cross-module notifications (a moderation verdict, a policy swap, an audit
// record) travel through the bus rather than through direct references.
#pragma once

#include <functional>
#include <memory>
#include <typeindex>
#include <unordered_map>
#include <vector>

namespace mv {

class EventBus {
 public:
  using SubscriptionId = std::uint64_t;

  template <typename Event>
  SubscriptionId subscribe(std::function<void(const Event&)> handler) {
    const SubscriptionId id = next_id_++;
    auto& list = handlers_[std::type_index(typeid(Event))];
    list.push_back({id, [h = std::move(handler)](const void* e) {
                      h(*static_cast<const Event*>(e));
                    }});
    return id;
  }

  template <typename Event>
  void unsubscribe(SubscriptionId id) {
    auto it = handlers_.find(std::type_index(typeid(Event)));
    if (it == handlers_.end()) return;
    std::erase_if(it->second, [id](const Entry& e) { return e.id == id; });
  }

  template <typename Event>
  void publish(const Event& event) {
    auto it = handlers_.find(std::type_index(typeid(Event)));
    if (it == handlers_.end()) return;
    // Copy: handlers may subscribe/unsubscribe reentrantly.
    const auto snapshot = it->second;
    for (const auto& entry : snapshot) entry.fn(&event);
    ++published_;
  }

  [[nodiscard]] std::uint64_t published_count() const { return published_; }

 private:
  struct Entry {
    SubscriptionId id;
    std::function<void(const void*)> fn;
  };

  std::unordered_map<std::type_index, std::vector<Entry>> handlers_;
  SubscriptionId next_id_ = 1;
  std::uint64_t published_ = 0;
};

}  // namespace mv
