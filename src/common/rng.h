// Deterministic random number generation.
//
// All stochastic components take an explicit Rng& so that every simulation,
// test, and benchmark is reproducible from a single seed. The core generator
// is SplitMix64 (fast, passes BigCrush for our purposes, trivially seedable);
// `fork()` derives an independent stream, which lets parallel entities own
// private generators without sharing state.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace mv {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller.
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Laplace(0, b) — the differential-privacy workhorse.
  double laplace(double scale) {
    const double u = uniform() - 0.5;
    return -scale * std::copysign(std::log(1.0 - 2.0 * std::fabs(u)), u);
  }

  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate) {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return -std::log(u) / rate;
  }

  /// Poisson-distributed count (Knuth; fine for small means).
  int poisson(double mean);

  /// Geometric-ish Zipf sample in [0, n) with exponent s (approximate, via CDF table-free rejection).
  std::size_t zipf(std::size_t n, double s);

  /// Derive an independent generator (stable function of current state).
  [[nodiscard]] Rng fork() {
    return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[next_below(i)]);
    }
  }

  /// Sample k distinct indices from [0, n). k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t state_;
};

}  // namespace mv
