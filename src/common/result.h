// Result<T>: value-or-error for expected domain failures.
//
// Domain operations that can legitimately fail (an invalid transaction, a
// rejected vote, a policy violation) return Result<T> instead of throwing;
// exceptions are reserved for broken invariants.
#pragma once

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace mv {

/// Shared error-code registry.
///
/// Error codes are wire-stable strings ("chain.stale_height") that clients
/// branch on; scattering them as raw literals across call sites invites
/// typo'd codes that no client matches. Every code a client is expected to
/// handle lives here as a named constant, and is_transient() classifies the
/// retryable ones so retry loops don't have to keep their own lists.
namespace errc {

// api.* — the ClientApi facade's uniform taxonomy (ledger/client_api.h).
// Per-subsystem codes below are mapped onto these at the API boundary.
inline constexpr const char* kApiBadVersion = "api.bad_version";
inline constexpr const char* kApiBadRequest = "api.bad_request";
inline constexpr const char* kApiBadHeight = "api.bad_height";
inline constexpr const char* kApiPrunedHeight = "api.pruned_height";
inline constexpr const char* kApiStaleHeight = "api.stale_height";
inline constexpr const char* kApiOverloaded = "api.overloaded";
inline constexpr const char* kApiUnknownSubscription = "api.unknown_subscription";
inline constexpr const char* kApiNoSubscriptionService =
    "api.no_subscription_service";

// chain.* — Blockchain query/install failures (ledger/chain.h).
inline constexpr const char* kChainBadHeight = "chain.bad_height";
inline constexpr const char* kChainPrunedHeight = "chain.pruned_height";
inline constexpr const char* kChainStaleHeight = "chain.stale_height";
inline constexpr const char* kChainOverloaded = "chain.overloaded";
inline constexpr const char* kChainBadTxIndex = "chain.bad_tx_index";
inline constexpr const char* kChainRetentionCorrupt = "chain.retention_corrupt";
inline constexpr const char* kChainNotFresh = "chain.not_fresh";
inline constexpr const char* kChainBadAnchor = "chain.bad_anchor";
inline constexpr const char* kChainBadBlockCount = "chain.bad_block_count";

// sub.* — subscription streaming (net/subscription.h, ledger/subscription.h).
inline constexpr const char* kSubStaleFrom = "sub.stale_from";
inline constexpr const char* kSubBadVersion = "sub.bad_version";
inline constexpr const char* kSubNotSubscribed = "sub.not_subscribed";
inline constexpr const char* kSubBusy = "sub.busy";
inline constexpr const char* kSubBadPush = "sub.bad_push";

// snapshot.* — snapshot codec + transfer (ledger/snapshot.h,
// net/snapshot_transfer.h).
inline constexpr const char* kSnapshotBusy = "snapshot.busy";
inline constexpr const char* kSnapshotServerBusy = "snapshot.server_busy";
inline constexpr const char* kSnapshotTimeout = "snapshot.timeout";
inline constexpr const char* kSnapshotUnavailable = "snapshot.unavailable";
inline constexpr const char* kSnapshotBadManifest = "snapshot.bad_manifest";
inline constexpr const char* kSnapshotUnknownHeader = "snapshot.unknown_header";
inline constexpr const char* kSnapshotUntrustedManifest =
    "snapshot.untrusted_manifest";
inline constexpr const char* kSnapshotNoManifest = "snapshot.no_manifest";
inline constexpr const char* kSnapshotNoPeers = "snapshot.no_peers";

// mempool.* — admission failures (ledger/mempool.h).
inline constexpr const char* kMempoolBadSignature = "mempool.bad_signature";
inline constexpr const char* kMempoolDuplicate = "mempool.duplicate";
inline constexpr const char* kMempoolStaleNonce = "mempool.stale_nonce";
inline constexpr const char* kMempoolUnderpriced = "mempool.underpriced";
inline constexpr const char* kMempoolFull = "mempool.full";

// tx.* — transaction application failures (ledger/state.h apply()). These
// reject one transaction, never the block; a client retries only after
// changing the transaction (new nonce, more funds), so none are transient.
inline constexpr const char* kTxBadSignature = "tx.bad_signature";
inline constexpr const char* kTxBadNonce = "tx.bad_nonce";
inline constexpr const char* kTxBadRecipient = "tx.bad_recipient";
inline constexpr const char* kTxUnknownContract = "tx.unknown_contract";
inline constexpr const char* kTxBadKind = "tx.bad_kind";
/// Raised by LedgerView::debit (transfers, fees, and contract escrow flows).
inline constexpr const char* kStateInsufficientFunds = "state.insufficient_funds";

// nft.* — NFT contract rejections (nft/contract.h). Scenario replay
// classifies these as permanent per-transaction outcomes.
inline constexpr const char* kNftUnknownMethod = "nft.unknown_method";
inline constexpr const char* kNftBadArgs = "nft.bad_args";
inline constexpr const char* kNftRoyaltyTooHigh = "nft.royalty_too_high";
inline constexpr const char* kNftNoSuchToken = "nft.no_such_token";
inline constexpr const char* kNftNotOwner = "nft.not_owner";
inline constexpr const char* kNftListed = "nft.listed";
inline constexpr const char* kNftNotListed = "nft.not_listed";
inline constexpr const char* kNftSelfPurchase = "nft.self_purchase";
inline constexpr const char* kNftNoStore = "nft.no_store";

// dao.* — DAO contract rejections (dao/contract.h).
inline constexpr const char* kDaoUnknownMethod = "dao.unknown_method";
inline constexpr const char* kDaoBadArgs = "dao.bad_args";
inline constexpr const char* kDaoAlreadyMember = "dao.already_member";
inline constexpr const char* kDaoNotAMember = "dao.not_a_member";
inline constexpr const char* kDaoNoSuchProposal = "dao.no_such_proposal";
inline constexpr const char* kDaoCorruptMeta = "dao.corrupt_meta";
inline constexpr const char* kDaoVotingClosed = "dao.voting_closed";
inline constexpr const char* kDaoVotingOpen = "dao.voting_open";
inline constexpr const char* kDaoDoubleVote = "dao.double_vote";
inline constexpr const char* kDaoAlreadyFinalized = "dao.already_finalized";
inline constexpr const char* kDaoNoStore = "dao.no_store";

// rep.* — on-chain reputation contract (reputation/contract.h).
inline constexpr const char* kRepUnknownMethod = "rep.unknown_method";
inline constexpr const char* kRepBadArgs = "rep.bad_args";
inline constexpr const char* kRepSelfRating = "rep.self_rating";
inline constexpr const char* kRepDeltaTooLarge = "rep.delta_too_large";
inline constexpr const char* kRepCooldown = "rep.cooldown";

// mod.* — on-chain moderation report registry (moderation/contract.h).
inline constexpr const char* kModUnknownMethod = "mod.unknown_method";
inline constexpr const char* kModBadArgs = "mod.bad_args";
inline constexpr const char* kModSelfReport = "mod.self_report";
inline constexpr const char* kModNoSuchReport = "mod.no_such_report";
inline constexpr const char* kModAlreadyResolved = "mod.already_resolved";
inline constexpr const char* kModNotModerator = "mod.not_moderator";

// beacon.* — beacon header codec + sharded-ledger rounds (ledger/beacon.h,
// ledger/shard.h).
inline constexpr const char* kBeaconBadCount = "beacon.bad_count";
inline constexpr const char* kBeaconBadRoot = "beacon.bad_root";
inline constexpr const char* kBeaconTrailing = "beacon.trailing_bytes";
inline constexpr const char* kShardBadConfig = "shard.bad_config";
inline constexpr const char* kShardUnknownReceipt = "shard.unknown_receipt";
inline constexpr const char* kShardRoundFailed = "shard.round_failed";

// xshard.* — cross-shard lock-and-mint contract rejections (ledger/shard.h).
inline constexpr const char* kXShardBadArgs = "xshard.bad_args";
inline constexpr const char* kXShardUnknownMethod = "xshard.unknown_method";
inline constexpr const char* kXShardBadDest = "xshard.bad_dest";
inline constexpr const char* kXShardWrongShard = "xshard.wrong_shard";
inline constexpr const char* kXShardUnknownBeacon = "xshard.unknown_beacon";
inline constexpr const char* kXShardBadProof = "xshard.bad_proof";
inline constexpr const char* kXShardReceiptSpent = "xshard.receipt_spent";

// trace.* — scenario trace codec + replay (scenario/trace.h,
// scenario/harness.h).
inline constexpr const char* kTraceBadMagic = "trace.bad_magic";
inline constexpr const char* kTraceBadVersion = "trace.bad_version";
inline constexpr const char* kTraceTruncated = "trace.truncated";
inline constexpr const char* kTraceBadCount = "trace.bad_count";
inline constexpr const char* kTraceBadChecksum = "trace.bad_checksum";
inline constexpr const char* kTraceBadTx = "trace.bad_tx";
inline constexpr const char* kTraceGenesisMismatch = "trace.genesis_mismatch";
inline constexpr const char* kTraceReplayDiverged = "trace.replay_diverged";

/// True when a retry of the same request may succeed without the caller
/// changing anything (load shedding, transient contention, lost responses).
/// Permanent answers — bad heights, pruned history, malformed payloads —
/// are not transient: retrying them is wasted traffic.
[[nodiscard]] inline bool is_transient(std::string_view code) {
  return code == kApiOverloaded || code == kChainOverloaded ||
         code == kSubBusy || code == kSnapshotBusy ||
         code == kSnapshotServerBusy || code == kSnapshotTimeout ||
         code == kMempoolFull;
}

}  // namespace errc

/// Error payload: machine-readable code plus human-readable detail.
struct Error {
  std::string code;     ///< stable, e.g. "tx.bad_signature"
  std::string message;  ///< free-form context

  [[nodiscard]] std::string to_string() const { return code + ": " + message; }
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value on error: " + error_->to_string());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw std::logic_error("Result::value on error: " + error_->to_string());
    return std::move(*value_);
  }
  [[nodiscard]] const T& value_or(const T& fallback) const& {
    return ok() ? *value_ : fallback;
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;                                     // ok
  Status(Error error) : error_(std::move(error)) {}       // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Status ok_status() { return Status{}; }
  [[nodiscard]] static Status fail(std::string code, std::string message) {
    return Status(Error{std::move(code), std::move(message)});
  }

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

inline Error make_error(std::string code, std::string message) {
  return Error{std::move(code), std::move(message)};
}

}  // namespace mv
