// Result<T>: value-or-error for expected domain failures.
//
// Domain operations that can legitimately fail (an invalid transaction, a
// rejected vote, a policy violation) return Result<T> instead of throwing;
// exceptions are reserved for broken invariants.
#pragma once

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace mv {

/// Error payload: machine-readable code plus human-readable detail.
struct Error {
  std::string code;     ///< stable, e.g. "tx.bad_signature"
  std::string message;  ///< free-form context

  [[nodiscard]] std::string to_string() const { return code + ": " + message; }
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value on error: " + error_->to_string());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw std::logic_error("Result::value on error: " + error_->to_string());
    return std::move(*value_);
  }
  [[nodiscard]] const T& value_or(const T& fallback) const& {
    return ok() ? *value_ : fallback;
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;                                     // ok
  Status(Error error) : error_(std::move(error)) {}       // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Status ok_status() { return Status{}; }
  [[nodiscard]] static Status fail(std::string code, std::string message) {
    return Status(Error{std::move(code), std::move(message)});
  }

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

inline Error make_error(std::string code, std::string message) {
  return Error{std::move(code), std::move(message)};
}

}  // namespace mv
