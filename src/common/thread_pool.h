// A small fixed-size worker pool for data-parallel fan-out.
//
// One pool is meant to live as long as its owning subsystem (the ledger keeps
// one per chain for parallel block validation) and be fed batches via
// parallel(): the calling thread blocks until every task of the batch has
// run. Task index dispatch and completion are guarded by a single mutex, so
// the pool itself introduces no data races to sanitize around — the
// interesting TSan surface is the tasks' own shared-state discipline.
//
// Determinism contract: the pool makes no ordering promises between tasks of
// a batch. Callers that need a deterministic result must make task outputs
// commutative (write to disjoint slots) and do any order-sensitive folding on
// the calling thread after parallel() returns; the parallel block-validation
// engine (ledger/parallel.h) is the reference user.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mv {

class ThreadPool {
 public:
  /// Spawns `workers` threads. 0 is allowed: parallel() then runs every task
  /// inline on the calling thread (useful for forcing serial execution in
  /// tests without changing call sites).
  explicit ThreadPool(std::size_t workers);

  /// Ownership contract: the destructor first waits for any in-flight batch
  /// to finish (it takes the batch lock), so a parallel() call racing the
  /// destructor completes normally instead of deadlocking on a batch whose
  /// workers exited early. Workers additionally drain the current batch even
  /// if they observe stop_ mid-batch. Starting a NEW batch once destruction
  /// has begun is still the caller's bug (use-after-free).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t workers() const { return threads_.size(); }

  /// Run fn(0) .. fn(tasks-1) on the pool and block until all have finished.
  /// Tasks may run in any order and concurrently; fn must not throw. Safe to
  /// call from multiple threads (batches are serialized, not interleaved).
  void parallel(std::size_t tasks, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex caller_mu_;  ///< serializes whole batches across callers

  std::mutex mu_;  ///< guards all fields below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t tasks_ = 0;
  std::size_t next_ = 0;
  std::size_t completed_ = 0;
  bool stop_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace mv
