// Logical simulation time.
//
// All simulation components share a SimClock owned by the scenario driver.
// Ticks are dimensionless; each simulation declares its own tick meaning
// (the safety sim uses 10ms ticks, the ledger uses 1 tick per round).
#pragma once

#include <cstdint>

namespace mv {

using Tick = std::int64_t;

class SimClock {
 public:
  [[nodiscard]] Tick now() const { return now_; }

  void advance(Tick delta = 1) { now_ += delta; }
  void reset() { now_ = 0; }

 private:
  Tick now_ = 0;
};

}  // namespace mv
