// Logical simulation time.
//
// All simulation components share a SimClock owned by the scenario driver.
// Ticks are dimensionless; each simulation declares its own tick meaning
// (the safety sim uses 10ms ticks, the ledger uses 1 tick per round).
//
// The counter is atomic so JobQueue workers may read now() (e.g. inside
// Network::send) while the simulation thread advances it; relaxed ordering
// suffices because any cross-thread happens-before the callers need comes
// from their own synchronization (the network lock, the queue's mutex).
// Advancing remains the simulation thread's job alone.
#pragma once

#include <atomic>
#include <cstdint>

namespace mv {

using Tick = std::int64_t;

class SimClock {
 public:
  [[nodiscard]] Tick now() const { return now_.load(std::memory_order_relaxed); }

  void advance(Tick delta = 1) { now_.fetch_add(delta, std::memory_order_relaxed); }
  void reset() { now_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<Tick> now_ = 0;
};

}  // namespace mv
