#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace mv {

int Rng::poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean > 30.0) {
    // Normal approximation for large means keeps this O(1).
    const double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

std::size_t Rng::zipf(std::size_t n, double s) {
  assert(n > 0);
  // Inverse-CDF on the harmonic partial sums would need a table; instead use
  // rejection sampling against the continuous envelope (Devroye).
  if (n == 1) return 0;
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    const double u = uniform();
    const double v = uniform();
    const double x = std::floor(std::pow(static_cast<double>(n) + 1.0, u));
    // x in [1, n+1); accept with the standard Zipf rejection test.
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      const auto idx = static_cast<std::size_t>(x) - 1;
      if (idx < n) return idx;
    }
  }
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  assert(k <= n);
  if (k == 0) return {};
  if (k * 3 >= n) {
    // Dense: partial Fisher-Yates over the full index range.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::swap(all[i], all[i + next_below(n - i)]);
    }
    all.resize(k);
    return all;
  }
  // Sparse: rejection into a set.
  std::unordered_set<std::size_t> seen;
  std::vector<std::size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const std::size_t idx = next_below(n);
    if (seen.insert(idx).second) out.push_back(idx);
  }
  return out;
}

}  // namespace mv
