#include "common/job_queue.h"

#include <algorithm>
#include <utility>

namespace mv {

const char* job_class_name(JobClass cls) {
  switch (cls) {
    case JobClass::kConsensus:
      return "consensus";
    case JobClass::kValidation:
      return "validation";
    case JobClass::kGossipRelay:
      return "gossip_relay";
    case JobClass::kSnapshotServe:
      return "snapshot_serve";
    case JobClass::kClientQuery:
      return "client_query";
  }
  return "unknown";
}

std::uint64_t JobQueueStats::submitted() const {
  std::uint64_t n = 0;
  for (const auto& c : classes) n += c.submitted;
  return n;
}

std::uint64_t JobQueueStats::completed() const {
  std::uint64_t n = 0;
  for (const auto& c : classes) n += c.completed;
  return n;
}

std::uint64_t JobQueueStats::shed() const {
  std::uint64_t n = 0;
  for (const auto& c : classes) n += c.shed();
  return n;
}

namespace {

double elapsed_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

void JobQueue::ClassState::record_wait(double us) {
  wait_stats.add(us);
  wait_window.add(us);
}

void JobQueue::ClassState::record_run(double us) {
  run_stats.add(us);
  run_window.add(us);
}

JobQueue::JobQueue(JobQueueConfig config) : config_(config) {
  if (config_.threads == 0) return;
  pool_ = std::make_unique<ThreadPool>(config_.threads);
  driver_ = std::thread([this] {
    // One pool task per worker, each pulling jobs until stop — the batch
    // (and so this parallel() call) completes only at shutdown.
    pool_->parallel(config_.threads, [this](std::size_t) { worker_loop(); });
  });
}

JobQueue::~JobQueue() {
  if (config_.threads == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    // Jobs already running finish; jobs still queued are abandoned (counted,
    // per the contract in the header — drain() first if completion matters).
    for (auto& cs : classes_) {
      cs.abandoned += cs.queue.size();
      pending_ -= cs.queue.size();
      cs.queue.clear();
    }
  }
  work_cv_.notify_all();
  driver_.join();
}

bool JobQueue::admit_locked(ClassState& cs, const JobQueueConfig::Limit& limit) {
  if (limit.max_depth != 0 && cs.queue.size() >= limit.max_depth) {
    ++cs.shed_depth;
    return false;
  }
  // The wait ceiling applies only while the class actually has a backlog and
  // a meaningful sample base: an idle lane cannot be latched shut by stale
  // latency from a burst that drained long ago.
  if (limit.max_p99_wait_us > 0.0 && !cs.queue.empty() &&
      cs.wait_window.seen() >= kMinShedSamples &&
      cs.wait_window.percentile(99.0) > limit.max_p99_wait_us) {
    ++cs.shed_wait;
    return false;
  }
  return true;
}

void JobQueue::execute_inline(ClassState& cs, const std::function<void()>& fn) {
  const auto t0 = Clock::now();
  fn();
  const double run_us = elapsed_us(t0, Clock::now());
  std::lock_guard<std::mutex> lock(mu_);
  cs.record_wait(0.0);
  cs.record_run(run_us);
  ++cs.completed;
}

void JobQueue::enqueue_locked(ClassState& cs, Job job) {
  ++cs.submitted;
  cs.queue.push_back(std::move(job));
  ++pending_;
}

bool JobQueue::submit(JobClass cls, std::function<void()> fn) {
  auto& cs = classes_[static_cast<std::size_t>(cls)];
  const auto& limit = config_.limits[static_cast<std::size_t>(cls)];
  if (config_.threads == 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!admit_locked(cs, limit)) return false;
      ++cs.submitted;
    }
    execute_inline(cs, fn);
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || !admit_locked(cs, limit)) return false;
    enqueue_locked(cs, Job{std::move(fn), nullptr, Clock::now()});
  }
  work_cv_.notify_one();
  return true;
}

bool JobQueue::run(JobClass cls, const std::function<void()>& fn) {
  auto& cs = classes_[static_cast<std::size_t>(cls)];
  const auto& limit = config_.limits[static_cast<std::size_t>(cls)];
  if (config_.threads == 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!admit_locked(cs, limit)) return false;
      ++cs.submitted;
    }
    execute_inline(cs, fn);
    return true;
  }
  auto batch = std::make_shared<Batch>(1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || !admit_locked(cs, limit)) return false;
    enqueue_locked(cs, Job{fn, batch, Clock::now()});
  }
  work_cv_.notify_one();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return batch->remaining == 0; });
  return true;
}

void JobQueue::run_batch(JobClass cls, std::size_t tasks,
                         const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  auto& cs = classes_[static_cast<std::size_t>(cls)];
  if (config_.threads == 0) {
    for (std::size_t i = 0; i < tasks; ++i) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++cs.submitted;
      }
      execute_inline(cs, [&fn, i] { fn(i); });
    }
    return;
  }
  auto batch = std::make_shared<Batch>(tasks);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = Clock::now();
    for (std::size_t i = 0; i < tasks; ++i) {
      enqueue_locked(cs, Job{[&fn, i] { fn(i); }, batch, now});
    }
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return batch->remaining == 0; });
}

void JobQueue::drain() {
  if (config_.threads == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0 && running_ == 0; });
}

JobQueueStats JobQueue::stats() const {
  JobQueueStats out;
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < kJobClassCount; ++i) {
    const ClassState& cs = classes_[i];
    JobClassStats& s = out.classes[i];
    s.name = job_class_name(static_cast<JobClass>(i));
    s.submitted = cs.submitted;
    s.completed = cs.completed;
    s.shed_depth = cs.shed_depth;
    s.shed_wait = cs.shed_wait;
    s.abandoned = cs.abandoned;
    s.depth = cs.queue.size();
    s.wait_mean_us = cs.wait_stats.mean();
    s.wait_max_us = cs.wait_stats.max();
    s.wait_p50_us = cs.wait_window.percentile(50.0);
    s.wait_p99_us = cs.wait_window.percentile(99.0);
    s.run_mean_us = cs.run_stats.mean();
    s.run_max_us = cs.run_stats.max();
    s.run_p50_us = cs.run_window.percentile(50.0);
    s.run_p99_us = cs.run_window.percentile(99.0);
  }
  return out;
}

void JobQueue::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
    if (pending_ == 0) {
      if (stop_) return;
      continue;
    }
    // Highest-priority non-empty lane, FIFO within the lane.
    ClassState* cs = nullptr;
    for (auto& candidate : classes_) {
      if (!candidate.queue.empty()) {
        cs = &candidate;
        break;
      }
    }
    Job job = std::move(cs->queue.front());
    cs->queue.pop_front();
    --pending_;
    ++running_;
    cs->record_wait(elapsed_us(job.enqueued, Clock::now()));
    lock.unlock();
    const auto t0 = Clock::now();
    job.fn();
    const double run_us = elapsed_us(t0, Clock::now());
    lock.lock();
    cs->record_run(run_us);
    ++cs->completed;
    --running_;
    bool wake_waiters = pending_ == 0 && running_ == 0;
    if (job.batch != nullptr && --job.batch->remaining == 0) {
      wake_waiters = true;
    }
    if (wake_waiters) done_cv_.notify_all();
  }
}

}  // namespace mv
