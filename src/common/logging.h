// Minimal leveled logger.
//
// Simulation code logs through this instead of writing to std::cout so tests
// can silence it and benches can keep their stdout clean for result rows.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace mv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  void write(LogLevel level, const std::string& msg);

 private:
  LogLevel level_ = LogLevel::kWarn;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace mv

#define MV_LOG_DEBUG ::mv::detail::LogLine(::mv::LogLevel::kDebug)
#define MV_LOG_INFO ::mv::detail::LogLine(::mv::LogLevel::kInfo)
#define MV_LOG_WARN ::mv::detail::LogLine(::mv::LogLevel::kWarn)
#define MV_LOG_ERROR ::mv::detail::LogLine(::mv::LogLevel::kError)
