#include "common/thread_pool.h"

namespace mv {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  // Serialize with any in-flight batch: once caller_mu_ is held, no caller
  // is inside parallel(), so stop_ is only ever observed between batches and
  // no thread can be left waiting on done_cv_ of a half-finished batch (the
  // stop-mid-batch deadlock). Callers must not start new batches once
  // destruction may begin — that is a use-after-free regardless.
  std::lock_guard<std::mutex> batch(caller_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || (fn_ != nullptr && next_ < tasks_); });
    // Drain before exiting: a worker that observed stop_ while a batch still
    // has unclaimed tasks keeps working, otherwise completed_ would never
    // reach tasks_ and the batch's caller would block on done_cv_ forever.
    if (fn_ != nullptr && next_ < tasks_) {
      const std::size_t idx = next_++;
      const auto* fn = fn_;
      lock.unlock();
      (*fn)(idx);
      lock.lock();
      if (++completed_ == tasks_) {
        fn_ = nullptr;
        done_cv_.notify_all();
      }
      continue;
    }
    if (stop_) return;
  }
}

void ThreadPool::parallel(std::size_t tasks,
                          const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (threads_.empty()) {
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> batch(caller_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  tasks_ = tasks;
  next_ = 0;
  completed_ = 0;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return completed_ == tasks_; });
}

}  // namespace mv
