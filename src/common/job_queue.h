// Prioritized job queue with per-class load monitoring and admission shedding.
//
// World services absorb bursty, mixed-priority traffic: consensus rounds,
// block validation, gossip relay, snapshot chunk serving, and client proof
// queries all compete for the same cores. This queue (modeled on rippled's
// JobQueue/LoadMonitor) gives each traffic class its own FIFO lane, executes
// the highest-priority non-empty lane first on a worker pool layered on
// ThreadPool, and sheds new work at admission when a lane backs up past its
// configured ceiling — a rejected job is counted, never queued, so overload
// degrades the lowest classes first instead of stalling consensus.
//
// Execution modes:
//   threads == 0  — inline: submit()/run()/run_batch() execute the job
//                   synchronously on the calling thread, in call order, so a
//                   deterministic simulation routed through the queue behaves
//                   byte-identically to calling the work directly (telemetry
//                   is still recorded; depth is always 0, so depth/wait
//                   ceilings never trigger).
//   threads >= 1  — queued: jobs are pulled by `threads` workers (one
//                   long-lived ThreadPool batch driven from an internal
//                   thread). Per-class FIFO order is start order; jobs of
//                   different classes overlap freely.
//
// Shedding policy (per class, both knobs 0 = unlimited):
//   - depth ceiling: a submit()/run() while the class already holds
//     max_depth queued jobs is rejected (shed_depth).
//   - wait ceiling: a submit()/run() while the class's recent p99 queue-wait
//     exceeds max_p99_wait_us is rejected (shed_wait). The check only applies
//     while the class has queued work and enough recent samples, so a burst
//     that drained long ago cannot latch the lane shut — admission recovers
//     as soon as the backlog clears.
//   - run_batch() is never shed: a batch is one unit of already-admitted
//     work (e.g. a block's signature verifications) and partial execution
//     would corrupt it. Admission control belongs at the batch's submitter.
//
// Threading contract: submit/run/run_batch/drain/stats are safe from any
// thread. A job must not call run()/run_batch()/drain() on its own queue
// (with few workers that self-wait deadlocks). The destructor abandons jobs
// still queued (counted per class) after finishing the ones already running;
// drain() first if completion matters.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "common/stats.h"
#include "common/thread_pool.h"

namespace mv {

/// Traffic classes, highest priority first (enum order IS the priority).
enum class JobClass : std::uint8_t {
  kConsensus = 0,     ///< block validation units on the consensus path
  kValidation = 1,    ///< signature pre-verification batches
  kGossipRelay = 2,   ///< rumor relays (net/gossip.h)
  kSnapshotServe = 3, ///< snapshot chunk serving (net/snapshot_transfer.h)
  kClientQuery = 4,   ///< client proof queries (Blockchain::prove_account)
};
inline constexpr std::size_t kJobClassCount = 5;

[[nodiscard]] const char* job_class_name(JobClass cls);

struct JobQueueConfig {
  /// Worker threads; 0 = deterministic inline mode (see file comment).
  std::size_t threads = 0;

  struct Limit {
    std::size_t max_depth = 0;     ///< queued-job ceiling; 0 = unlimited
    double max_p99_wait_us = 0.0;  ///< recent-p99 wait ceiling; 0 = unlimited
  };
  /// Per-class ceilings, indexed by JobClass. Defaults never shed, so a
  /// queue constructed without limits is pure telemetry.
  std::array<Limit, kJobClassCount> limits{};

  [[nodiscard]] Limit& limit(JobClass cls) {
    return limits[static_cast<std::size_t>(cls)];
  }
};

/// One class's counters and latency digest, snapshotted by JobQueue::stats().
/// Means/max are lifetime (RunningStats); p50/p99 are over the most recent
/// window of samples (so they track current load, not history).
struct JobClassStats {
  const char* name = "";
  std::uint64_t submitted = 0;   ///< admitted jobs (sheds are NOT counted here)
  std::uint64_t completed = 0;
  std::uint64_t shed_depth = 0;  ///< rejected: depth ceiling
  std::uint64_t shed_wait = 0;   ///< rejected: recent p99 wait ceiling
  std::uint64_t abandoned = 0;   ///< queued at destruction, never run
  std::size_t depth = 0;         ///< queued right now
  double wait_mean_us = 0.0;
  double wait_p50_us = 0.0;
  double wait_p99_us = 0.0;
  double wait_max_us = 0.0;
  double run_mean_us = 0.0;
  double run_p50_us = 0.0;
  double run_p99_us = 0.0;
  double run_max_us = 0.0;

  [[nodiscard]] std::uint64_t shed() const { return shed_depth + shed_wait; }
};

/// Overload observability for the whole queue — the job-side counterpart of
/// NetworkStats / MempoolStats.
struct JobQueueStats {
  std::array<JobClassStats, kJobClassCount> classes{};

  [[nodiscard]] const JobClassStats& of(JobClass cls) const {
    return classes[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] std::uint64_t submitted() const;
  [[nodiscard]] std::uint64_t completed() const;
  [[nodiscard]] std::uint64_t shed() const;
};

class JobQueue {
 public:
  explicit JobQueue(JobQueueConfig config);
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Configured worker count (0 = inline mode).
  [[nodiscard]] std::size_t workers() const { return config_.threads; }

  /// Fire-and-forget: admission-checked enqueue (inline mode: admission
  /// check, then synchronous execution). False = shed; fn was not and will
  /// not be run.
  bool submit(JobClass cls, std::function<void()> fn);

  /// Synchronous sheddable execution: admission-checked, then blocks until
  /// fn has run (on a worker, or inline). False = shed, fn not run. This is
  /// the admission-control shape for request/response work (client queries).
  bool run(JobClass cls, const std::function<void()>& fn);

  /// Run fn(0)..fn(tasks-1) as `tasks` jobs of `cls` and block until all
  /// finished. Never shed. Tasks may run concurrently and in any order
  /// (inline mode: ascending order on the calling thread) — callers needing
  /// determinism write to disjoint slots, exactly as with
  /// ThreadPool::parallel.
  void run_batch(JobClass cls, std::size_t tasks,
                 const std::function<void(std::size_t)>& fn);

  /// Block until every admitted job has finished (inline mode: no-op).
  void drain();

  [[nodiscard]] JobQueueStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Completion latch shared by the jobs of one run()/run_batch() call;
  /// `remaining` is guarded by mu_ and done_cv_ fires when it hits zero.
  struct Batch {
    explicit Batch(std::size_t n) : remaining(n) {}
    std::size_t remaining;
  };

  struct Job {
    std::function<void()> fn;
    std::shared_ptr<Batch> batch;  ///< null for fire-and-forget submits
    Clock::time_point enqueued;
  };

  /// Latency digest window: recent sample ring feeding the p50/p99 the
  /// shedding decision and stats() read (common/stats.h RecentWindow).
  static constexpr std::size_t kLatencyWindow = 128;
  /// Minimum recent wait samples before the wait ceiling may shed.
  static constexpr std::size_t kMinShedSamples = 8;

  struct ClassState {
    std::deque<Job> queue;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed_depth = 0;
    std::uint64_t shed_wait = 0;
    std::uint64_t abandoned = 0;
    RunningStats wait_stats;
    RunningStats run_stats;
    RecentWindow wait_window{kLatencyWindow};
    RecentWindow run_window{kLatencyWindow};

    void record_wait(double us);
    void record_run(double us);
  };

  /// Admission decision; callers hold mu_. True = admit.
  bool admit_locked(ClassState& cs, const JobQueueConfig::Limit& limit);
  /// Inline-mode execution: record a zero wait, time the run, count it.
  void execute_inline(ClassState& cs, const std::function<void()>& fn);
  /// Enqueue under mu_ (caller already admitted) and wake a worker.
  void enqueue_locked(ClassState& cs, Job job);
  void worker_loop();

  JobQueueConfig config_;

  mutable std::mutex mu_;  ///< guards classes_, pending_, running_, stop_
  std::condition_variable work_cv_;  ///< workers: work available or stop
  std::condition_variable done_cv_;  ///< waiters: batch done / queue drained
  std::array<ClassState, kJobClassCount> classes_;
  std::size_t pending_ = 0;  ///< queued jobs, all classes
  std::size_t running_ = 0;  ///< jobs currently executing on workers
  bool stop_ = false;

  /// The workers: one long-lived ThreadPool batch of `threads` tasks, each
  /// running worker_loop() until stop; driver_ parks inside
  /// ThreadPool::parallel for the queue's whole life.
  std::unique_ptr<ThreadPool> pool_;
  std::thread driver_;
};

}  // namespace mv
