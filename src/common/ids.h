// Strong identifier types.
//
// Every domain entity in the framework (avatar, proposal, asset, ...) is keyed
// by a distinct id type so that ids from different domains cannot be mixed up
// at compile time. Ids are thin wrappers over a 64-bit value.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace mv {

/// A type-safe 64-bit identifier. `Tag` is a phantom type; two StrongId
/// instantiations with different tags do not convert to each other.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << Tag::prefix() << id.value_;
  }

  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};
  [[nodiscard]] static constexpr StrongId invalid() { return StrongId(kInvalid); }

 private:
  std::uint64_t value_ = kInvalid;
};

// Domain id tags. Each carries a short printable prefix for logs.
struct AvatarTag        { static constexpr const char* prefix() { return "avatar:"; } };
struct AccountTag       { static constexpr const char* prefix() { return "acct:"; } };
struct AssetTag         { static constexpr const char* prefix() { return "asset:"; } };
struct ProposalTag      { static constexpr const char* prefix() { return "prop:"; } };
struct ModuleTag        { static constexpr const char* prefix() { return "module:"; } };
struct SpaceTag         { static constexpr const char* prefix() { return "space:"; } };
struct SensorTag        { static constexpr const char* prefix() { return "sensor:"; } };
struct ReportTag        { static constexpr const char* prefix() { return "report:"; } };
struct TwinTag          { static constexpr const char* prefix() { return "twin:"; } };
struct NodeTag          { static constexpr const char* prefix() { return "node:"; } };
struct TxTag            { static constexpr const char* prefix() { return "tx:"; } };
struct ContractTag      { static constexpr const char* prefix() { return "contract:"; } };
struct ListingTag       { static constexpr const char* prefix() { return "listing:"; } };
struct DataFlowTag      { static constexpr const char* prefix() { return "flow:"; } };

using AvatarId   = StrongId<AvatarTag>;
using AccountId  = StrongId<AccountTag>;
using AssetId    = StrongId<AssetTag>;
using ProposalId = StrongId<ProposalTag>;
using ModuleId   = StrongId<ModuleTag>;
using SpaceId    = StrongId<SpaceTag>;
using SensorId   = StrongId<SensorTag>;
using ReportId   = StrongId<ReportTag>;
using TwinId     = StrongId<TwinTag>;
using NodeId     = StrongId<NodeTag>;
using TxId       = StrongId<TxTag>;
using ContractId = StrongId<ContractTag>;
using ListingId  = StrongId<ListingTag>;
using DataFlowId = StrongId<DataFlowTag>;

/// Monotonic id factory; one per domain, typically owned by a registry.
template <typename Id>
class IdAllocator {
 public:
  [[nodiscard]] Id next() { return Id(next_++); }
  [[nodiscard]] std::uint64_t issued() const { return next_; }

 private:
  std::uint64_t next_ = 0;
};

}  // namespace mv

namespace std {
template <typename Tag>
struct hash<mv::StrongId<Tag>> {
  size_t operator()(mv::StrongId<Tag> id) const noexcept {
    return std::hash<uint64_t>{}(id.value());
  }
};
}  // namespace std
