#include "common/logging.h"

namespace mv {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& msg) {
  if (level < level_) return;
  std::clog << "[" << level_name(level) << "] " << msg << '\n';
}

}  // namespace mv
