// Streaming statistics used by every benchmark and several online components
// (reputation decay calibration, moderation queue telemetry).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mv {

/// Welford one-pass mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Reservoir of raw samples; exact percentiles for bench reporting.
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    // The sample lands at the back of a possibly-sorted vector; percentile()
    // must re-sort or it would interpolate over partially-unsorted data.
    sorted_ = false;
  }
  /// Exact (linearly interpolated) percentile; p is clamped into [0,100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-capacity ring of the most recent samples with exact percentiles
/// over the window. Where Percentiles reports lifetime order statistics,
/// RecentWindow tracks *current* behaviour — the shape load-shedding and
/// live telemetry decisions need (JobQueue wait ceilings, subscription push
/// latency). Insertion order inside the ring is irrelevant to an order
/// statistic, so overwriting the oldest slot is enough.
class RecentWindow {
 public:
  explicit RecentWindow(std::size_t capacity = 128) : window_(capacity) {}

  void add(double x) {
    window_[seen_ % window_.size()] = x;
    ++seen_;
  }

  /// Total samples ever offered (not capped by the window).
  [[nodiscard]] std::size_t seen() const { return seen_; }
  /// Samples currently in the window: min(seen, capacity).
  [[nodiscard]] std::size_t size() const {
    return seen_ < window_.size() ? seen_ : window_.size();
  }

  /// Exact percentile over the windowed samples (0 when empty).
  [[nodiscard]] double percentile(double p) const;

 private:
  std::vector<double> window_;
  std::size_t seen_ = 0;
};

/// Fixed-width histogram over [lo, hi) for distribution shape reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Record one sample. Non-finite samples (NaN, ±Inf) are discarded and
  /// counted in dropped() — casting them to an index is undefined behavior.
  /// Finite samples outside [lo, hi) are counted in underflow()/overflow()
  /// instead of being clamped into the edge bins, so out-of-range mass is
  /// visible rather than silently inflating bin 0 / the last bin.
  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  /// In-range samples only (excludes dropped/underflow/overflow).
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Samples discarded because they were not finite.
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  /// Finite samples below lo / at-or-above hi.
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  /// Render a one-line ASCII sparkline — used by bench binaries.
  [[nodiscard]] std::string sparkline() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t dropped_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace mv
