// Canonical binary serialization.
//
// Blocks, transactions, and signed payloads must hash identically across the
// whole system, so everything that is hashed or signed round-trips through
// this little-endian, length-prefixed format.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mv {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  void reserve(std::size_t n) { buf_.reserve(n); }
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(std::string_view v);
  void bytes(std::span<const std::uint8_t> v);
  /// Raw append without a length prefix (for fixed-size digests).
  void raw(std::span<const std::uint8_t> v) { buf_.insert(buf_.end(), v.begin(), v.end()); }

  [[nodiscard]] const Bytes& data() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> u8();
  [[nodiscard]] Result<std::uint32_t> u32();
  [[nodiscard]] Result<std::uint64_t> u64();
  [[nodiscard]] Result<std::int64_t> i64();
  [[nodiscard]] Result<double> f64();
  [[nodiscard]] Result<std::string> str();
  [[nodiscard]] Result<Bytes> bytes();
  /// Read exactly n raw bytes (no length prefix).
  [[nodiscard]] Result<Bytes> raw(std::size_t n);

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  [[nodiscard]] bool need(std::size_t n) const { return pos_ + n <= data_.size(); }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Hex encoding for digests in logs and docs.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> data);

}  // namespace mv
