#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mv {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double Percentiles::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // A negative p would make `rank` negative, and casting that to size_t
  // below is UB; out-of-range p means the extreme order statistic.
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double RecentWindow::percentile(double p) const {
  const std::size_t n = size();
  if (n == 0) return 0.0;
  Percentiles pct;
  for (std::size_t i = 0; i < n; ++i) pct.add(window_[i]);
  return pct.percentile(p);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  if (!std::isfinite(x)) {
    ++dropped_;
    return;
  }
  // Out-of-range mass is accounted for, never clamped into an edge bin; the
  // range checks run in the double domain, so no out-of-range value (however
  // far beyond [lo, hi)) is ever cast to an index.
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double t = (x - lo_) / (hi_ - lo_);
  const std::size_t idx =
      std::min(static_cast<std::size_t>(t * static_cast<double>(counts_.size())),
               counts_.size() - 1);
  ++counts_[idx];
  ++total_;
}

std::string Histogram::sparkline() const {
  static const char* kLevels[] = {" ", "▁", "▂", "▃",
                                  "▄", "▅", "▆", "▇", "█"};
  std::size_t peak = 0;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (const auto c : counts_) {
    const std::size_t level =
        peak == 0 ? 0 : (c * 8 + peak - 1) / peak;  // ceil into [0,8]
    out += kLevels[std::min<std::size_t>(level, 8)];
  }
  return out;
}

}  // namespace mv
