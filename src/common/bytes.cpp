#include "common/bytes.h"

namespace mv {

namespace {
constexpr char kHex[] = "0123456789abcdef";

Error truncated() { return make_error("bytes.truncated", "buffer ended mid-field"); }
}  // namespace

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void ByteWriter::bytes(std::span<const std::uint8_t> v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

Result<std::uint8_t> ByteReader::u8() {
  if (!need(1)) return truncated();
  return data_[pos_++];
}

Result<std::uint32_t> ByteReader::u32() {
  if (!need(4)) return truncated();
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<std::uint64_t> ByteReader::u64() {
  if (!need(8)) return truncated();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<std::int64_t> ByteReader::i64() {
  auto v = u64();
  if (!v.ok()) return v.error();
  return static_cast<std::int64_t>(v.value());
}

Result<double> ByteReader::f64() {
  auto bits = u64();
  if (!bits.ok()) return bits.error();
  double v = 0;
  const std::uint64_t b = bits.value();
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

Result<std::string> ByteReader::str() {
  auto len = u32();
  if (!len.ok()) return len.error();
  if (!need(len.value())) return truncated();
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len.value());
  pos_ += len.value();
  return out;
}

Result<Bytes> ByteReader::bytes() {
  auto len = u32();
  if (!len.ok()) return len.error();
  return raw(len.value());
}

Result<Bytes> ByteReader::raw(std::size_t n) {
  if (!need(n)) return truncated();
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (const auto b : data) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

}  // namespace mv
