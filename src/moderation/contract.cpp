#include "moderation/contract.h"

namespace mv::moderation {

namespace {

std::string report_key(std::uint64_t id) {
  return "report/" + std::to_string(id);
}

Bytes enc_u64(std::uint64_t v) {
  ByteWriter w;
  w.u64(v);
  return w.take();
}

std::uint64_t dec_u64(const Bytes* b, std::uint64_t fallback = 0) {
  if (b == nullptr) return fallback;
  ByteReader r(*b);
  auto v = r.u64();
  return v.ok() ? v.value() : fallback;
}

/// Stored record: reporter || offender || kind || filed_height || status.
/// (The free-form detail string is hashed into the record key space only via
/// the transaction itself; the store keeps the adjudicable facts.)
Bytes encode_record(const ModerationContract::ReportView& v) {
  ByteWriter w;
  w.u64(v.reporter.value);
  w.u64(v.offender.value);
  w.u8(v.kind);
  w.i64(v.filed_height);
  w.u8(static_cast<std::uint8_t>(v.status));
  return w.take();
}

std::optional<ModerationContract::ReportView> decode_record(const Bytes& bytes) {
  ByteReader r(bytes);
  ModerationContract::ReportView v;
  auto reporter = r.u64();
  auto offender = r.u64();
  auto kind = r.u8();
  auto height = r.i64();
  auto status = r.u8();
  if (!reporter.ok() || !offender.ok() || !kind.ok() || !height.ok() ||
      !status.ok() || status.value() > 2) {
    return std::nullopt;
  }
  v.reporter = crypto::Address{reporter.value()};
  v.offender = crypto::Address{offender.value()};
  v.kind = kind.value();
  v.filed_height = height.value();
  v.status = static_cast<ReportStatus>(status.value());
  return v;
}

}  // namespace

Status ModerationContract::call(ledger::CallContext& ctx,
                                const std::string& method,
                                const Bytes& args) const {
  if (method == "report") return do_report(ctx, args);
  if (method == "resolve") return do_resolve(ctx, args);
  return Status::fail(errc::kModUnknownMethod, method);
}

Status ModerationContract::do_report(ledger::CallContext& ctx,
                                     const Bytes& args) const {
  ByteReader r(args);
  auto offender = r.u64();
  auto kind = r.u8();
  auto detail = r.str();
  if (!offender.ok() || !kind.ok() || !detail.ok() || offender.value() == 0 ||
      kind.value() > config_.max_kind) {
    return Status::fail(errc::kModBadArgs,
                        "report(offender: address, kind: u8, detail: str)");
  }
  if (offender.value() == ctx.caller().value) {
    return Status::fail(errc::kModSelfReport, "cannot report yourself");
  }
  const std::uint64_t id = dec_u64(ctx.get("next_id"));
  ctx.put("next_id", enc_u64(id + 1));
  ReportView v;
  v.reporter = ctx.caller();
  v.offender = crypto::Address{offender.value()};
  v.kind = kind.value();
  v.filed_height = ctx.height();
  v.status = ReportStatus::kOpen;
  ctx.put(report_key(id), encode_record(v));
  ctx.put("open_count", enc_u64(dec_u64(ctx.get("open_count")) + 1));
  return {};
}

Status ModerationContract::do_resolve(ledger::CallContext& ctx,
                                      const Bytes& args) const {
  if (ctx.caller() != config_.moderator) {
    return Status::fail(errc::kModNotModerator,
                        "resolve is restricted to the moderator identity");
  }
  ByteReader r(args);
  auto id = r.u64();
  auto uphold = r.u8();
  if (!id.ok() || !uphold.ok() || uphold.value() > 1) {
    return Status::fail(errc::kModBadArgs, "resolve(id: u64, uphold: 0|1)");
  }
  const Bytes* record = ctx.get(report_key(id.value()));
  if (record == nullptr) {
    return Status::fail(errc::kModNoSuchReport, "unknown report");
  }
  auto view = decode_record(*record);
  if (!view.has_value() || view->status != ReportStatus::kOpen) {
    return Status::fail(errc::kModAlreadyResolved, "report closed");
  }
  view->status = uphold.value() != 0 ? ReportStatus::kUpheld
                                     : ReportStatus::kDismissed;
  ctx.put(report_key(id.value()), encode_record(*view));
  ctx.put("open_count", enc_u64(dec_u64(ctx.get("open_count")) - 1));
  if (uphold.value() != 0) {
    ctx.put("upheld_count", enc_u64(dec_u64(ctx.get("upheld_count")) + 1));
  }
  return {};
}

std::uint64_t ModerationContract::report_count(const ledger::LedgerState& state,
                                               const std::string& contract) {
  const auto* store = state.find_store(contract);
  if (store == nullptr) return 0;
  const auto it = store->find("next_id");
  return it == store->end() ? 0 : dec_u64(&it->second);
}

std::uint64_t ModerationContract::open_count(const ledger::LedgerState& state,
                                             const std::string& contract) {
  const auto* store = state.find_store(contract);
  if (store == nullptr) return 0;
  const auto it = store->find("open_count");
  return it == store->end() ? 0 : dec_u64(&it->second);
}

std::uint64_t ModerationContract::upheld_count(const ledger::LedgerState& state,
                                               const std::string& contract) {
  const auto* store = state.find_store(contract);
  if (store == nullptr) return 0;
  const auto it = store->find("upheld_count");
  return it == store->end() ? 0 : dec_u64(&it->second);
}

Result<ModerationContract::ReportView> ModerationContract::report(
    const ledger::LedgerState& state, const std::string& contract,
    std::uint64_t id) {
  const auto* store = state.find_store(contract);
  if (store == nullptr) return make_error(errc::kModNoSuchReport, "no contract state");
  const auto it = store->find(report_key(id));
  if (it == store->end()) return make_error(errc::kModNoSuchReport, "unknown report");
  auto view = decode_record(it->second);
  if (!view.has_value()) return make_error(errc::kModBadArgs, "corrupt record");
  return *view;
}

Bytes ModerationContract::encode_report(crypto::Address offender,
                                        std::uint8_t kind,
                                        const std::string& detail) {
  ByteWriter w;
  w.u64(offender.value);
  w.u8(kind);
  w.str(detail);
  return w.take();
}

Bytes ModerationContract::encode_resolve(std::uint64_t id, bool uphold) {
  ByteWriter w;
  w.u64(id);
  w.u8(uphold ? 1 : 0);
  return w.take();
}

}  // namespace mv::moderation
