#include "moderation/classifier.h"

#include <algorithm>

namespace mv::moderation {

const char* to_string(ReportKind kind) {
  switch (kind) {
    case ReportKind::kSpam: return "spam";
    case ReportKind::kHarassment: return "harassment";
    case ReportKind::kScam: return "scam";
    case ReportKind::kMisinformation: return "misinformation";
  }
  return "?";
}

Classification AiClassifier::classify(const Report& report, Rng& rng) const {
  const double mu = report.is_violation ? config_.mu_violation : config_.mu_benign;
  Classification c;
  c.score = std::clamp(rng.normal(mu, config_.sigma), 0.0, 1.0);
  c.verdict = c.score > 0.5 ? Verdict::kUphold : Verdict::kDismiss;
  c.confident =
      c.score <= config_.confident_low || c.score >= config_.confident_high;
  return c;
}

}  // namespace mv::moderation
