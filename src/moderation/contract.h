// ModerationContract: the report queue as replicated ledger state (§III-D).
//
// The in-memory ModerationEngine (moderation/engine.h) models staffing and
// latency; this contract is the on-chain registry the paper's transparency
// argument implies — filing a report and resolving it are signed
// transactions, so "who reported whom, and what was decided" is replicated
// and auditable, and report storms land as real ledger traffic in the
// macro-workload harness.
//
// Methods (args ByteWriter-encoded):
//   report(offender: u64-address, kind: u8, detail: str) — file a report
//   resolve(id: u64, uphold: u8)                         — moderator verdict
//
// Only the configured moderator address may resolve. The store keeps
// open_count / upheld_count counters in lockstep with the report records —
// the consistency the scenario invariant checker audits every block.
#pragma once

#include <string>

#include "ledger/state.h"

namespace mv::moderation {

struct ModerationContractConfig {
  std::string name = "moderation";
  /// The platform's sanction identity: the only address allowed to resolve.
  crypto::Address moderator;
  /// Report kinds are u8 in [0, max_kind].
  std::uint8_t max_kind = 3;
};

enum class ReportStatus : std::uint8_t { kOpen = 0, kUpheld = 1, kDismissed = 2 };

class ModerationContract final : public ledger::Contract {
 public:
  explicit ModerationContract(ModerationContractConfig config)
      : config_(std::move(config)) {}

  [[nodiscard]] std::string name() const override { return config_.name; }
  [[nodiscard]] Status call(ledger::CallContext& ctx, const std::string& method,
                            const Bytes& args) const override;

  [[nodiscard]] const ModerationContractConfig& config() const { return config_; }

  struct ReportView {
    crypto::Address reporter;
    crypto::Address offender;
    std::uint8_t kind = 0;
    std::int64_t filed_height = 0;
    ReportStatus status = ReportStatus::kOpen;
  };

  // ---- read-side helpers (inspect a committed state) ----
  [[nodiscard]] static std::uint64_t report_count(const ledger::LedgerState& state,
                                                  const std::string& contract);
  [[nodiscard]] static std::uint64_t open_count(const ledger::LedgerState& state,
                                                const std::string& contract);
  [[nodiscard]] static std::uint64_t upheld_count(const ledger::LedgerState& state,
                                                  const std::string& contract);
  [[nodiscard]] static Result<ReportView> report(const ledger::LedgerState& state,
                                                 const std::string& contract,
                                                 std::uint64_t id);

  // ---- argument encoders ----
  [[nodiscard]] static Bytes encode_report(crypto::Address offender,
                                           std::uint8_t kind,
                                           const std::string& detail);
  [[nodiscard]] static Bytes encode_resolve(std::uint64_t id, bool uphold);

 private:
  Status do_report(ledger::CallContext& ctx, const Bytes& args) const;
  Status do_resolve(ledger::CallContext& ctx, const Bytes& args) const;

  ModerationContractConfig config_;
};

}  // namespace mv::moderation
