// Community social-good simulation (§III-D, bench E12).
//
// Models the Tekinbaş et al. Minecraft findings [20]: communities need both
// "tools to deal with players' misbehaviour (punitive approaches) and tools
// for encouraging positive behaviours (preventive approaches)", plus
// incentive mechanisms. Agents have behaviour types; punitive tools mute
// repeat offenders, preventive tools reward positive acts and shift
// responsive agents' behaviour over time. The measured outcome is community
// health: positive-action share and negative actions per active member.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace mv::moderation {

enum class PolicyMix : std::uint8_t {
  kNone,
  kPunitiveOnly,
  kPreventiveOnly,
  kMixed,
};

[[nodiscard]] const char* to_string(PolicyMix mix);

struct CommunityConfig {
  std::size_t agents = 2000;
  double toxic_fraction = 0.08;
  double prosocial_fraction = 0.25;  ///< the rest are neutral
  std::size_t rounds = 60;
  PolicyMix mix = PolicyMix::kNone;
  // Punitive knobs.
  double detection_rate = 0.6;  ///< negative act detected per round
  int sanctions_to_mute = 3;
  int mute_rounds = 10;
  // Preventive knobs.
  double incentive_strength = 0.015;  ///< per-round behaviour shift from rewards
  double responsiveness_neutral = 1.0;
  double responsiveness_toxic = 0.25;  ///< toxic agents respond weakly
};

struct CommunityMetrics {
  std::uint64_t positive_actions = 0;
  std::uint64_t negative_actions = 0;
  std::uint64_t sanctions = 0;
  std::uint64_t mutes = 0;
  std::uint64_t rewards = 0;
  double final_positive_share = 0.0;  ///< over the last quarter of the run

  [[nodiscard]] double positive_share() const {
    const auto total = positive_actions + negative_actions;
    return total ? static_cast<double>(positive_actions) /
                       static_cast<double>(total)
                 : 0.0;
  }
};

class CommunitySim {
 public:
  CommunitySim(CommunityConfig config, Rng rng);

  CommunityMetrics run();

  /// Positive-action share per round (time series for the bench).
  [[nodiscard]] const std::vector<double>& positive_share_series() const {
    return series_;
  }

 private:
  struct Agent {
    double p_positive = 0.4;  ///< acts positively this round
    double p_negative = 0.1;
    double responsiveness = 1.0;
    int sanctions = 0;
    int muted_until = -1;
  };

  CommunityConfig config_;
  Rng rng_;
  std::vector<Agent> agents_;
  std::vector<double> series_;
};

}  // namespace mv::moderation
