// Moderation queue engine (§III intro, bench E3).
//
// "Online communities present several challenges when these grow in size and
// moderators... cannot keep up with the demand." The engine is a discrete-
// time queue with pluggable staffing:
//  - kHumanOnly        fixed moderator pool, highest accuracy, lowest capacity
//  - kAiOnly           unbounded throughput at classifier accuracy
//  - kAiAssisted       AI auto-resolves confident cases; the rest go to humans
//  - kCommunityJury    sortition juries; capacity scales with community size
//  - kHybrid           AI triage first, jury for the unconfident remainder
// Backlog and resolution-latency percentiles are the E3 measurements.
#pragma once

#include <deque>
#include <map>
#include <set>

#include "common/result.h"
#include "common/stats.h"
#include "moderation/classifier.h"

namespace mv::moderation {

enum class StaffingMode : std::uint8_t {
  kHumanOnly,
  kAiOnly,
  kAiAssisted,
  kCommunityJury,
  kHybrid,
};

[[nodiscard]] const char* to_string(StaffingMode mode);

struct EngineConfig {
  StaffingMode mode = StaffingMode::kHumanOnly;
  std::size_t human_moderators = 10;
  double human_throughput = 0.05;  ///< reports per moderator per tick
  double human_accuracy = 0.95;
  std::size_t community_size = 1000;
  double juror_availability = 0.002;  ///< jurors per member per tick
  std::size_t jury_size = 5;
  double juror_accuracy = 0.8;
  /// Appeals (§III-C "juries, formal debates"): upheld verdicts can be
  /// re-adjudicated once by a larger, more careful appellate jury.
  std::size_t appellate_jury_size = 11;
  double appellate_accuracy = 0.9;
  /// §IV-C: reputation attaches to reporting too. When enabled (and a
  /// credibility oracle is set), the slow queue serves reports from
  /// credible reporters first instead of FIFO.
  bool prioritize_by_reporter_credibility = false;
  ClassifierConfig classifier;
};

struct EngineMetrics {
  std::uint64_t submitted = 0;
  std::uint64_t resolved = 0;
  std::uint64_t resolved_by_ai = 0;
  std::uint64_t resolved_by_human = 0;
  std::uint64_t resolved_by_jury = 0;
  std::uint64_t correct = 0;
  std::uint64_t false_punishments = 0;  ///< upheld reports on innocents
  std::uint64_t appeals = 0;
  std::uint64_t overturned = 0;  ///< appeals that flipped uphold → dismiss
  Percentiles latency;

  [[nodiscard]] double accuracy() const {
    return resolved ? static_cast<double>(correct) / static_cast<double>(resolved)
                    : 1.0;
  }
};

class ModerationEngine {
 public:
  ModerationEngine(EngineConfig config, Rng rng);

  void submit(Report report);
  /// Advance one tick: AI triage (if any) then human/jury service.
  void step(Tick now);

  [[nodiscard]] std::size_t backlog() const {
    return ai_queue_.size() + slow_queue_.size();
  }
  [[nodiscard]] const EngineMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const std::vector<Resolution>& resolutions() const {
    return resolutions_;
  }

  /// Appeal an upheld verdict: a larger appellate jury re-adjudicates once.
  /// Returns the final verdict (kDismiss = overturned).
  [[nodiscard]] Result<Verdict> appeal(ReportId id, Tick now);

  /// Reporter-credibility oracle (wired to the reputation system).
  using CredibilityOracle = std::function<double(AccountId)>;
  void set_credibility_oracle(CredibilityOracle oracle) {
    credibility_ = std::move(oracle);
  }

 private:
  void resolve(const Report& report, Verdict verdict, ResolverKind resolver,
               Tick now);
  [[nodiscard]] Verdict judge(const Report& report, double accuracy);
  [[nodiscard]] Verdict jury_verdict(const Report& report);
  /// Pop the next slow-queue report: FIFO, or max reporter credibility when
  /// prioritization is enabled.
  [[nodiscard]] Report pop_slow();

  EngineConfig config_;
  Rng rng_;
  AiClassifier classifier_;
  std::deque<Report> ai_queue_;    ///< awaiting AI triage (AI modes only)
  std::deque<Report> slow_queue_;  ///< awaiting human/jury service
  double human_budget_ = 0.0;      ///< fractional capacity carry-over
  double jury_budget_ = 0.0;
  EngineMetrics metrics_;
  std::vector<Resolution> resolutions_;
  /// Upheld cases kept for the (single) appeal window.
  std::map<ReportId, Report> appealable_;
  std::set<ReportId> appealed_;
  CredibilityOracle credibility_;
};

}  // namespace mv::moderation
