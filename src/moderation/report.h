// Moderation report types (§III intro, §III-D).
#pragma once

#include <string>

#include "common/clock.h"
#include "common/ids.h"

namespace mv::moderation {

enum class ReportKind : std::uint8_t {
  kSpam,
  kHarassment,
  kScam,
  kMisinformation,
};

[[nodiscard]] const char* to_string(ReportKind kind);

struct Report {
  ReportId id;
  AccountId reporter;
  AccountId offender;
  ReportKind kind = ReportKind::kSpam;
  Tick filed_at = 0;
  /// Ground truth, known to the simulation but not to the moderators: did a
  /// violation actually occur? (Drives classifier/judge accuracy models.)
  bool is_violation = true;
};

enum class Verdict : std::uint8_t { kUphold, kDismiss };

enum class ResolverKind : std::uint8_t { kAi, kHuman, kJury };

struct Resolution {
  ReportId report;
  AccountId reporter;
  AccountId offender;
  Verdict verdict = Verdict::kDismiss;
  ResolverKind resolver = ResolverKind::kHuman;
  Tick resolved_at = 0;
  bool correct = false;  ///< verdict matches ground truth
};

}  // namespace mv::moderation
