#include "moderation/community.h"

#include <algorithm>

namespace mv::moderation {

const char* to_string(PolicyMix mix) {
  switch (mix) {
    case PolicyMix::kNone: return "none";
    case PolicyMix::kPunitiveOnly: return "punitive-only";
    case PolicyMix::kPreventiveOnly: return "preventive-only";
    case PolicyMix::kMixed: return "punitive+preventive";
  }
  return "?";
}

CommunitySim::CommunitySim(CommunityConfig config, Rng rng)
    : config_(config), rng_(rng) {
  agents_.resize(config_.agents);
  for (auto& a : agents_) {
    const double u = rng_.uniform();
    if (u < config_.toxic_fraction) {
      a.p_positive = 0.1;
      a.p_negative = 0.5;
      a.responsiveness = config_.responsiveness_toxic;
    } else if (u < config_.toxic_fraction + config_.prosocial_fraction) {
      a.p_positive = 0.8;
      a.p_negative = 0.02;
      a.responsiveness = 0.5;  // already near ceiling
    } else {
      a.p_positive = 0.4;
      a.p_negative = 0.12;
      a.responsiveness = config_.responsiveness_neutral;
    }
  }
}

CommunityMetrics CommunitySim::run() {
  CommunityMetrics metrics;
  const bool punitive = config_.mix == PolicyMix::kPunitiveOnly ||
                        config_.mix == PolicyMix::kMixed;
  const bool preventive = config_.mix == PolicyMix::kPreventiveOnly ||
                          config_.mix == PolicyMix::kMixed;

  std::uint64_t tail_pos = 0, tail_neg = 0;
  const std::size_t tail_start = config_.rounds - config_.rounds / 4;

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    std::uint64_t round_pos = 0, round_neg = 0;
    for (auto& a : agents_) {
      if (static_cast<int>(round) < a.muted_until) continue;

      if (rng_.chance(a.p_positive)) {
        ++round_pos;
        if (preventive) {
          ++metrics.rewards;
          // Incentives reinforce the rewarded behaviour (social learning):
          // shift probability mass from negative to positive.
          const double shift = config_.incentive_strength * a.responsiveness;
          a.p_positive = std::min(0.95, a.p_positive + shift);
          a.p_negative = std::max(0.01, a.p_negative - shift);
        }
      }
      if (rng_.chance(a.p_negative)) {
        ++round_neg;
        if (punitive && rng_.chance(config_.detection_rate)) {
          ++metrics.sanctions;
          ++a.sanctions;
          if (a.sanctions >= config_.sanctions_to_mute) {
            a.muted_until = static_cast<int>(round) + config_.mute_rounds;
            a.sanctions = 0;
            ++metrics.mutes;
          }
        }
      }
    }
    metrics.positive_actions += round_pos;
    metrics.negative_actions += round_neg;
    if (round >= tail_start) {
      tail_pos += round_pos;
      tail_neg += round_neg;
    }
    const auto total = round_pos + round_neg;
    series_.push_back(total ? static_cast<double>(round_pos) /
                                  static_cast<double>(total)
                            : 0.0);
  }
  metrics.final_positive_share =
      (tail_pos + tail_neg)
          ? static_cast<double>(tail_pos) / static_cast<double>(tail_pos + tail_neg)
          : 0.0;
  return metrics;
}

}  // namespace mv::moderation
