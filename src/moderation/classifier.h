// Simulated AI moderation classifier (§IV-A: Crossmod-class tools [21-23]).
//
// SUBSTITUTION NOTE (DESIGN.md §4): to the moderation queue, any real model
// is a score distribution. Violating reports score around mu_violation,
// benign ones around mu_benign; the verdict threshold sits at 0.5 and
// anything outside the [low, high] confidence band is deferred to humans.
// Tuning the distributions reproduces any (precision, recall) operating
// point, which is all the queueing claims of §III depend on.
#pragma once

#include <optional>

#include "common/rng.h"
#include "moderation/report.h"

namespace mv::moderation {

struct ClassifierConfig {
  double mu_violation = 0.78;
  double mu_benign = 0.22;
  double sigma = 0.13;
  double confident_low = 0.25;   ///< score below → confident dismiss
  double confident_high = 0.75;  ///< score above → confident uphold
};

struct Classification {
  double score = 0.0;
  Verdict verdict = Verdict::kDismiss;
  bool confident = false;
};

class AiClassifier {
 public:
  explicit AiClassifier(ClassifierConfig config = {}) : config_(config) {}

  [[nodiscard]] Classification classify(const Report& report, Rng& rng) const;

  [[nodiscard]] const ClassifierConfig& config() const { return config_; }

 private:
  ClassifierConfig config_;
};

}  // namespace mv::moderation
