#include "moderation/engine.h"

namespace mv::moderation {

const char* to_string(StaffingMode mode) {
  switch (mode) {
    case StaffingMode::kHumanOnly: return "human-only";
    case StaffingMode::kAiOnly: return "ai-only";
    case StaffingMode::kAiAssisted: return "ai-assisted";
    case StaffingMode::kCommunityJury: return "community-jury";
    case StaffingMode::kHybrid: return "hybrid(ai+jury)";
  }
  return "?";
}

ModerationEngine::ModerationEngine(EngineConfig config, Rng rng)
    : config_(config), rng_(rng), classifier_(config.classifier) {}

void ModerationEngine::submit(Report report) {
  ++metrics_.submitted;
  switch (config_.mode) {
    case StaffingMode::kAiOnly:
    case StaffingMode::kAiAssisted:
    case StaffingMode::kHybrid:
      ai_queue_.push_back(std::move(report));
      break;
    case StaffingMode::kHumanOnly:
    case StaffingMode::kCommunityJury:
      slow_queue_.push_back(std::move(report));
      break;
  }
}

Verdict ModerationEngine::judge(const Report& report, double accuracy) {
  const bool correct = rng_.chance(accuracy);
  const bool uphold = correct == report.is_violation;
  return uphold ? Verdict::kUphold : Verdict::kDismiss;
}

Verdict ModerationEngine::jury_verdict(const Report& report) {
  std::size_t uphold = 0;
  for (std::size_t j = 0; j < config_.jury_size; ++j) {
    if (judge(report, config_.juror_accuracy) == Verdict::kUphold) ++uphold;
  }
  return uphold * 2 > config_.jury_size ? Verdict::kUphold : Verdict::kDismiss;
}

void ModerationEngine::resolve(const Report& report, Verdict verdict,
                               ResolverKind resolver, Tick now) {
  Resolution r;
  r.report = report.id;
  r.reporter = report.reporter;
  r.offender = report.offender;
  r.verdict = verdict;
  r.resolver = resolver;
  r.resolved_at = now;
  r.correct = (verdict == Verdict::kUphold) == report.is_violation;
  ++metrics_.resolved;
  metrics_.correct += r.correct;
  if (verdict == Verdict::kUphold && !report.is_violation) {
    ++metrics_.false_punishments;
  }
  switch (resolver) {
    case ResolverKind::kAi: ++metrics_.resolved_by_ai; break;
    case ResolverKind::kHuman: ++metrics_.resolved_by_human; break;
    case ResolverKind::kJury: ++metrics_.resolved_by_jury; break;
  }
  metrics_.latency.add(static_cast<double>(now - report.filed_at));
  resolutions_.push_back(r);
  if (verdict == Verdict::kUphold) appealable_.emplace(report.id, report);
}

Result<Verdict> ModerationEngine::appeal(ReportId id, Tick now) {
  const auto it = appealable_.find(id);
  if (it == appealable_.end()) {
    return make_error("moderation.not_appealable",
                      "no upheld verdict on file for this report");
  }
  if (!appealed_.insert(id).second) {
    return make_error("moderation.already_appealed", "one appeal per case");
  }
  ++metrics_.appeals;
  // Appellate jury: larger and more careful than the trial jury.
  std::size_t uphold = 0;
  for (std::size_t j = 0; j < config_.appellate_jury_size; ++j) {
    if (judge(it->second, config_.appellate_accuracy) == Verdict::kUphold) {
      ++uphold;
    }
  }
  const Verdict verdict = uphold * 2 > config_.appellate_jury_size
                              ? Verdict::kUphold
                              : Verdict::kDismiss;
  if (verdict == Verdict::kDismiss) {
    ++metrics_.overturned;
    if (!it->second.is_violation && metrics_.false_punishments > 0) {
      --metrics_.false_punishments;  // the innocent party is made whole
    }
    Resolution r;
    r.report = id;
    r.reporter = it->second.reporter;
    r.offender = it->second.offender;
    r.verdict = Verdict::kDismiss;
    r.resolver = ResolverKind::kJury;
    r.resolved_at = now;
    r.correct = !it->second.is_violation;
    resolutions_.push_back(r);
  }
  return verdict;
}

Report ModerationEngine::pop_slow() {
  if (!config_.prioritize_by_reporter_credibility || !credibility_ ||
      slow_queue_.size() <= 1) {
    Report report = std::move(slow_queue_.front());
    slow_queue_.pop_front();
    return report;
  }
  auto best = slow_queue_.begin();
  double best_cred = credibility_(best->reporter);
  for (auto it = std::next(slow_queue_.begin()); it != slow_queue_.end(); ++it) {
    const double cred = credibility_(it->reporter);
    if (cred > best_cred) {
      best = it;
      best_cred = cred;
    }
  }
  Report report = std::move(*best);
  slow_queue_.erase(best);
  return report;
}

void ModerationEngine::step(Tick now) {
  // 1. AI triage: effectively unbounded throughput.
  while (!ai_queue_.empty()) {
    Report report = std::move(ai_queue_.front());
    ai_queue_.pop_front();
    const Classification c = classifier_.classify(report, rng_);
    if (config_.mode == StaffingMode::kAiOnly || c.confident) {
      resolve(report, c.verdict, ResolverKind::kAi, now);
    } else {
      slow_queue_.push_back(std::move(report));  // defer to humans/jury
    }
  }

  // 2. Slow-path service: humans or juries, capacity-limited.
  const bool jury_mode = config_.mode == StaffingMode::kCommunityJury ||
                         config_.mode == StaffingMode::kHybrid;
  if (jury_mode) {
    jury_budget_ += static_cast<double>(config_.community_size) *
                    config_.juror_availability /
                    static_cast<double>(config_.jury_size);
    while (jury_budget_ >= 1.0 && !slow_queue_.empty()) {
      jury_budget_ -= 1.0;
      const Report report = pop_slow();
      resolve(report, jury_verdict(report), ResolverKind::kJury, now);
    }
  } else if (config_.mode != StaffingMode::kAiOnly) {
    human_budget_ += static_cast<double>(config_.human_moderators) *
                     config_.human_throughput;
    while (human_budget_ >= 1.0 && !slow_queue_.empty()) {
      human_budget_ -= 1.0;
      const Report report = pop_slow();
      resolve(report, judge(report, config_.human_accuracy),
              ResolverKind::kHuman, now);
    }
  }
}

}  // namespace mv::moderation
