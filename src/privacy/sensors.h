// Simulated XR sensors (§II-A).
//
// SUBSTITUTION NOTE (DESIGN.md §4): we have no HMD hardware, so each sensor
// is a parametric generative model seeded by per-user latent traits. The
// traits are the ground truth the paper worries about leaking: gaze dwell
// direction encodes a "preference class" (after Renaud et al. [3], gaze gives
// away users' preferences), head-bob frequency/amplitude encode identity
// (gait), and heart rate encodes arousal state. Inference attackers
// (inference.h) try to recover these traits from released readings — exactly
// the §II-A threat model, with a measurable ground truth.
#pragma once

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/rng.h"

namespace mv::privacy {

enum class SensorType : std::uint8_t {
  kGaze = 0,
  kHeadPose = 1,
  kHeartRate = 2,
  kSpatialMap = 3,
  kMicrophone = 4,
};

[[nodiscard]] const char* to_string(SensorType type);

/// How sensitive a sensor's raw stream is (drives default pipeline policy).
enum class Sensitivity : std::uint8_t { kLow, kMedium, kHigh, kCritical };

[[nodiscard]] Sensitivity default_sensitivity(SensorType type);

struct SensorReading {
  SensorType type = SensorType::kGaze;
  std::uint64_t subject = 0;  ///< pseudonymous user id
  Tick at = 0;
  std::vector<double> values;  ///< type-specific feature vector
};

/// Latent per-user traits — the attacker's recovery target.
struct UserTraits {
  int preference_class = 0;      ///< in [0, kPreferenceClasses)
  double gait_frequency = 1.0;   ///< Hz-like, identity-revealing
  double gait_amplitude = 1.0;   ///< identity-revealing
  double resting_hr = 70.0;
  double voice_pitch = 150.0;    ///< Hz, voiceprint axis 1
  double voice_formant = 1.6;    ///< formant ratio, voiceprint axis 2
};

inline constexpr int kPreferenceClasses = 8;

/// Centroid of a preference class on the unit gaze plane.
[[nodiscard]] std::pair<double, double> preference_centroid(int klass);

class SensorSim {
 public:
  explicit SensorSim(Rng rng) : rng_(rng) {}

  [[nodiscard]] UserTraits sample_traits();

  /// Gaze dwell point: preference-class centroid + isotropic noise.
  [[nodiscard]] SensorReading gaze(std::uint64_t subject, const UserTraits& t, Tick at);
  /// Head-pose bob features: (frequency, amplitude) estimates + noise.
  [[nodiscard]] SensorReading head_pose(std::uint64_t subject, const UserTraits& t, Tick at);
  /// Heart rate: resting rate + arousal drift + noise.
  [[nodiscard]] SensorReading heart_rate(std::uint64_t subject, const UserTraits& t, Tick at);
  /// Spatial map: a small point cloud of the user's room (x, y, z triples);
  /// includes a "bystander" cluster with probability bystander_rate.
  [[nodiscard]] SensorReading spatial_map(std::uint64_t subject, Tick at,
                                          std::size_t points = 32,
                                          double bystander_rate = 0.3);
  /// Microphone frame features: (pitch Hz, formant ratio) — the voiceprint.
  [[nodiscard]] SensorReading microphone(std::uint64_t subject, const UserTraits& t, Tick at);

 private:
  Rng rng_;
};

}  // namespace mv::privacy
