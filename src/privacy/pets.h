// Privacy-enhancing technologies (PETs, §II-A Solutions / §II-D).
//
// "This fine-control of collected data can be managed by privacy-enhancing
// technologies (PETs) that obfuscate any sensible data from the sensors
// before being shared with cloud services." Each PET is a pure transform over
// a SensorReading; the pipeline chains them per channel. A PET may suppress a
// reading entirely (temporal subsampling) by returning nullopt.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "privacy/sensors.h"

namespace mv::privacy {

class Pet {
 public:
  virtual ~Pet() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Transform (or suppress) a reading. Stateless w.r.t. readings except
  /// where documented (Subsample and MicroAggregate keep state).
  [[nodiscard]] virtual std::optional<SensorReading> apply(SensorReading reading,
                                                           Rng& rng) const = 0;

  /// Differential-privacy cost of one released reading under this PET; the
  /// pipeline sums chain costs against the channel's epsilon budget
  /// (sequential composition). Non-DP transforms cost nothing.
  [[nodiscard]] virtual double epsilon_cost() const { return 0.0; }
};

using PetPtr = std::shared_ptr<const Pet>;

/// ε-differential-privacy Laplace mechanism on every value.
class LaplaceNoise final : public Pet {
 public:
  LaplaceNoise(double epsilon, double l1_sensitivity)
      : epsilon_(epsilon), sensitivity_(l1_sensitivity) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<SensorReading> apply(SensorReading reading,
                                                   Rng& rng) const override;
  [[nodiscard]] double epsilon() const { return epsilon_; }
  [[nodiscard]] double epsilon_cost() const override { return epsilon_; }

 private:
  double epsilon_;
  double sensitivity_;
};

/// Plain Gaussian jitter.
class GaussianNoise final : public Pet {
 public:
  explicit GaussianNoise(double sigma) : sigma_(sigma) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<SensorReading> apply(SensorReading reading,
                                                   Rng& rng) const override;

 private:
  double sigma_;
};

/// Temporal subsampling: release 1 reading in n (per PET instance).
class Subsample final : public Pet {
 public:
  explicit Subsample(std::size_t keep_one_in) : keep_one_in_(keep_one_in) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<SensorReading> apply(SensorReading reading,
                                                   Rng& rng) const override;

 private:
  std::size_t keep_one_in_;
  mutable std::size_t counter_ = 0;
};

/// Spatial generalization: quantize every value to a grid cell.
class SpatialGeneralize final : public Pet {
 public:
  explicit SpatialGeneralize(double cell) : cell_(cell) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<SensorReading> apply(SensorReading reading,
                                                   Rng& rng) const override;

 private:
  double cell_;
};

/// Bystander redaction for spatial maps: drop points inside person-height
/// dense clusters (the "shadow the humans out of the scan" defence [5], [6]).
class BystanderRedaction final : public Pet {
 public:
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<SensorReading> apply(SensorReading reading,
                                                   Rng& rng) const override;
};

/// Voice masking: shifts the pitch axis (dimension 0 of microphone frames)
/// by a fixed per-persona offset and blurs the formant — the "talk through
/// your avatar's voice" defence against voiceprint re-identification.
class VoiceMask final : public Pet {
 public:
  explicit VoiceMask(double pitch_shift_hz, double formant_blur = 0.15)
      : pitch_shift_(pitch_shift_hz), formant_blur_(formant_blur) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<SensorReading> apply(SensorReading reading,
                                                   Rng& rng) const override;

 private:
  double pitch_shift_;
  double formant_blur_;
};

/// Temporal micro-aggregation: buffers k readings and releases their
/// element-wise mean every k-th input (suppressing the rest). Individual
/// moments disappear into the cohort average — the k-anonymity-flavoured
/// aggregation defence of the MR privacy literature [5].
class MicroAggregate final : public Pet {
 public:
  explicit MicroAggregate(std::size_t k) : k_(k) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<SensorReading> apply(SensorReading reading,
                                                   Rng& rng) const override;

 private:
  std::size_t k_;
  mutable std::vector<SensorReading> buffer_;
};

/// Hard clamp of every value into [lo, hi] (range disclosure limit).
class ClampRange final : public Pet {
 public:
  ClampRange(double lo, double hi) : lo_(lo), hi_(hi) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<SensorReading> apply(SensorReading reading,
                                                   Rng& rng) const override;

 private:
  double lo_;
  double hi_;
};

}  // namespace mv::privacy
