// The data-centric privacy pipeline — Figure 2 of the paper.
//
// De Guzman et al.'s "protecting the input" architecture, as adopted in
// §II-A/§II-D: every sensor channel flows through (1) a granular user switch,
// (2) a consent check, (3) a per-channel PET chain, and only then reaches the
// local app and/or the cloud sink. A hardware-style indicator (the "LED in
// the device" of §II-D) is on whenever any channel is actively releasing to
// the cloud, and every cloud release can be mirrored as an on-ledger audit
// record via the audit hook.
#pragma once

#include <functional>
#include <limits>
#include <map>

#include "privacy/pets.h"

namespace mv::privacy {

enum class SinkKind : std::uint8_t { kLocalApp, kCloud };

struct ChannelPolicy {
  bool switched_on = true;     ///< granular per-sensor user switch
  bool consent_given = false;  ///< cloud release requires explicit consent
  bool local_allowed = true;   ///< on-device processing (FPF recommendation)
  std::vector<PetPtr> transforms;  ///< applied in order before cloud release
  std::string purpose = "unspecified";
  /// Differential-privacy budget per epoch: every cloud release spends the
  /// summed epsilon_cost() of the chain (sequential composition); once spent,
  /// the channel stops releasing until reset_budgets(). Infinity = unmetered.
  double epsilon_budget = std::numeric_limits<double>::infinity();
};

struct PipelineStats {
  std::uint64_t raw_in = 0;
  std::uint64_t released_local = 0;
  std::uint64_t released_cloud = 0;
  std::uint64_t blocked_switch = 0;
  std::uint64_t blocked_consent = 0;
  std::uint64_t blocked_budget = 0;
  std::uint64_t suppressed_by_pet = 0;
};

class PrivacyPipeline {
 public:
  using Sink = std::function<void(const SensorReading&)>;
  /// Audit hook: (reading released to cloud, PET chain description, purpose).
  using AuditHook =
      std::function<void(const SensorReading&, const std::string& pet_chain,
                         const std::string& purpose)>;

  explicit PrivacyPipeline(Rng rng) : rng_(rng) {}

  void set_policy(SensorType type, ChannelPolicy policy);
  [[nodiscard]] const ChannelPolicy* policy(SensorType type) const;

  /// Granular switch (§II-D: "granular control (switches) to manage the
  /// input data flows from sensors").
  void set_switch(SensorType type, bool on);
  void set_consent(SensorType type, bool consent);

  void set_local_sink(Sink sink) { local_sink_ = std::move(sink); }
  void set_cloud_sink(Sink sink) { cloud_sink_ = std::move(sink); }
  void set_audit_hook(AuditHook hook) { audit_hook_ = std::move(hook); }

  /// Push one raw reading through the pipeline. Returns the cloud-released
  /// reading if one was released, nullopt otherwise.
  std::optional<SensorReading> process(const SensorReading& raw);

  /// The §II-D indicator: on iff the last processed reading of any channel
  /// reached the cloud within `indicator_hold` ticks.
  [[nodiscard]] bool indicator_on(Tick now) const;

  [[nodiscard]] const PipelineStats& stats() const { return stats_; }

  /// Human-readable PET chain of a channel ("laplace(eps=1.0)+subsample(1/4)").
  [[nodiscard]] std::string pet_chain_description(SensorType type) const;

  /// Cumulative DP budget spent by a channel this epoch.
  [[nodiscard]] double epsilon_spent(SensorType type) const;
  /// Start a new privacy epoch: every channel's spent budget resets to 0.
  void reset_budgets() { epsilon_spent_.clear(); }

  Tick indicator_hold = 10;

 private:
  Rng rng_;
  std::map<SensorType, double> epsilon_spent_;
  std::map<SensorType, ChannelPolicy> policies_;
  Sink local_sink_;
  Sink cloud_sink_;
  AuditHook audit_hook_;
  PipelineStats stats_;
  Tick last_cloud_release_ = -1'000'000;
};

/// Default policy table following §II-D: critical sensors ship with the
/// switch on but consent off and a strong PET chain; low-sensitivity sensors
/// ship permissive.
[[nodiscard]] ChannelPolicy recommended_policy(SensorType type);

}  // namespace mv::privacy
