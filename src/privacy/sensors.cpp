#include "privacy/sensors.h"

#include <cmath>
#include <numbers>

namespace mv::privacy {

const char* to_string(SensorType type) {
  switch (type) {
    case SensorType::kGaze: return "gaze";
    case SensorType::kHeadPose: return "head_pose";
    case SensorType::kHeartRate: return "heart_rate";
    case SensorType::kSpatialMap: return "spatial_map";
    case SensorType::kMicrophone: return "microphone";
  }
  return "?";
}

Sensitivity default_sensitivity(SensorType type) {
  switch (type) {
    case SensorType::kGaze: return Sensitivity::kCritical;   // psyche-revealing [3]
    case SensorType::kHeadPose: return Sensitivity::kHigh;   // identity (gait)
    case SensorType::kHeartRate: return Sensitivity::kCritical;
    case SensorType::kSpatialMap: return Sensitivity::kHigh; // bystanders' rooms
    case SensorType::kMicrophone: return Sensitivity::kCritical;
  }
  return Sensitivity::kMedium;
}

std::pair<double, double> preference_centroid(int klass) {
  const double angle = 2.0 * std::numbers::pi * static_cast<double>(klass) /
                       static_cast<double>(kPreferenceClasses);
  return {0.5 + 0.35 * std::cos(angle), 0.5 + 0.35 * std::sin(angle)};
}

UserTraits SensorSim::sample_traits() {
  UserTraits t;
  t.preference_class = static_cast<int>(rng_.next_below(kPreferenceClasses));
  t.gait_frequency = rng_.uniform(0.8, 2.2);
  t.gait_amplitude = rng_.uniform(0.5, 1.5);
  t.resting_hr = rng_.uniform(55.0, 90.0);
  t.voice_pitch = rng_.uniform(90.0, 250.0);
  t.voice_formant = rng_.uniform(1.2, 2.2);
  return t;
}

SensorReading SensorSim::microphone(std::uint64_t subject, const UserTraits& t,
                                    Tick at) {
  SensorReading r;
  r.type = SensorType::kMicrophone;
  r.subject = subject;
  r.at = at;
  r.values = {t.voice_pitch + rng_.normal(0.0, 4.0),
              t.voice_formant + rng_.normal(0.0, 0.04)};
  return r;
}

SensorReading SensorSim::gaze(std::uint64_t subject, const UserTraits& t, Tick at) {
  const auto [cx, cy] = preference_centroid(t.preference_class);
  SensorReading r;
  r.type = SensorType::kGaze;
  r.subject = subject;
  r.at = at;
  r.values = {cx + rng_.normal(0.0, 0.12), cy + rng_.normal(0.0, 0.12)};
  return r;
}

SensorReading SensorSim::head_pose(std::uint64_t subject, const UserTraits& t, Tick at) {
  SensorReading r;
  r.type = SensorType::kHeadPose;
  r.subject = subject;
  r.at = at;
  r.values = {t.gait_frequency + rng_.normal(0.0, 0.05),
              t.gait_amplitude + rng_.normal(0.0, 0.05)};
  return r;
}

SensorReading SensorSim::heart_rate(std::uint64_t subject, const UserTraits& t, Tick at) {
  SensorReading r;
  r.type = SensorType::kHeartRate;
  r.subject = subject;
  r.at = at;
  r.values = {t.resting_hr + rng_.uniform(-3.0, 12.0)};
  return r;
}

SensorReading SensorSim::spatial_map(std::uint64_t subject, Tick at,
                                     std::size_t points, double bystander_rate) {
  SensorReading r;
  r.type = SensorType::kSpatialMap;
  r.subject = subject;
  r.at = at;
  r.values.reserve(points * 3);
  const bool bystander = rng_.chance(bystander_rate);
  const double bx = rng_.uniform(0.5, 4.5);
  const double by = rng_.uniform(0.5, 4.5);
  for (std::size_t i = 0; i < points; ++i) {
    if (bystander && i < points / 4) {
      // Bystander cluster: a tight blob at person height.
      r.values.push_back(bx + rng_.normal(0.0, 0.15));
      r.values.push_back(by + rng_.normal(0.0, 0.15));
      r.values.push_back(rng_.uniform(0.2, 1.8));
    } else {
      // Room geometry: walls/furniture, spread over a 5x5x2.5 m room.
      r.values.push_back(rng_.uniform(0.0, 5.0));
      r.values.push_back(rng_.uniform(0.0, 5.0));
      r.values.push_back(rng_.uniform(0.0, 2.5));
    }
  }
  return r;
}

}  // namespace mv::privacy
