#include "privacy/inference.h"

#include <cmath>
#include <limits>
#include <map>

namespace mv::privacy {

int infer_preference(const std::vector<SensorReading>& released) {
  double mx = 0.0, my = 0.0;
  std::size_t n = 0;
  for (const auto& r : released) {
    if (r.type != SensorType::kGaze || r.values.size() < 2) continue;
    mx += r.values[0];
    my += r.values[1];
    ++n;
  }
  if (n == 0) return -1;
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  int best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (int k = 0; k < kPreferenceClasses; ++k) {
    const auto [cx, cy] = preference_centroid(k);
    const double d = (mx - cx) * (mx - cx) + (my - cy) * (my - cy);
    if (d < best_d) {
      best_d = d;
      best = k;
    }
  }
  return best;
}

GaitProfile summarize_gait(std::uint64_t subject,
                           const std::vector<SensorReading>& released) {
  GaitProfile p;
  p.subject = subject;
  std::size_t n = 0;
  for (const auto& r : released) {
    if (r.type != SensorType::kHeadPose || r.values.size() < 2) continue;
    p.frequency += r.values[0];
    p.amplitude += r.values[1];
    ++n;
  }
  if (n > 0) {
    p.frequency /= static_cast<double>(n);
    p.amplitude /= static_cast<double>(n);
  }
  return p;
}

std::uint64_t identify_gait(const GaitProfile& probe,
                            const std::vector<GaitProfile>& enrolled) {
  std::uint64_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (const auto& e : enrolled) {
    // Frequency spans ~3x the amplitude range; normalize dimensions so both
    // traits matter.
    const double df = (probe.frequency - e.frequency) / 1.4;
    const double da = (probe.amplitude - e.amplitude) / 1.0;
    const double d = df * df + da * da;
    if (d < best_d) {
      best_d = d;
      best = e.subject;
    }
  }
  return best;
}

double infer_resting_hr(const std::vector<SensorReading>& released) {
  double best = std::numeric_limits<double>::max();
  for (const auto& r : released) {
    if (r.type != SensorType::kHeartRate || r.values.empty()) continue;
    best = std::min(best, r.values[0]);
  }
  return best == std::numeric_limits<double>::max() ? 0.0 : best;
}

bool screen_elevated_hr(const std::vector<SensorReading>& released,
                        double threshold) {
  const double resting = infer_resting_hr(released);
  return resting > 0.0 && resting >= threshold;
}

VoiceProfile summarize_voice(std::uint64_t subject,
                             const std::vector<SensorReading>& released) {
  VoiceProfile p;
  p.subject = subject;
  std::size_t n = 0;
  for (const auto& r : released) {
    if (r.type != SensorType::kMicrophone || r.values.size() < 2) continue;
    p.pitch += r.values[0];
    p.formant += r.values[1];
    ++n;
  }
  if (n > 0) {
    p.pitch /= static_cast<double>(n);
    p.formant /= static_cast<double>(n);
  }
  return p;
}

std::uint64_t identify_voice(const VoiceProfile& probe,
                             const std::vector<VoiceProfile>& enrolled) {
  std::uint64_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (const auto& e : enrolled) {
    // Normalize by trait spans: pitch 160 Hz, formant ratio 1.0.
    const double dp = (probe.pitch - e.pitch) / 160.0;
    const double df = (probe.formant - e.formant) / 1.0;
    const double d = dp * dp + df * df;
    if (d < best_d) {
      best_d = d;
      best = e.subject;
    }
  }
  return best;
}

double bystander_exposure(const SensorReading& released, double bx, double by,
                          double radius) {
  if (released.type != SensorType::kSpatialMap || released.values.size() < 3) {
    return 0.0;
  }
  const std::size_t points = released.values.size() / 3;
  std::size_t inside = 0;
  for (std::size_t i = 0; i < points; ++i) {
    const double dx = released.values[i * 3] - bx;
    const double dy = released.values[i * 3 + 1] - by;
    const double z = released.values[i * 3 + 2];
    if (dx * dx + dy * dy <= radius * radius && z >= 0.2 && z <= 1.9) ++inside;
  }
  return points ? static_cast<double>(inside) / static_cast<double>(points) : 0.0;
}

double stream_utility(const std::vector<SensorReading>& raw,
                      const std::vector<SensorReading>& released) {
  if (raw.empty()) return 1.0;
  std::map<Tick, const SensorReading*> by_tick;
  for (const auto& r : released) by_tick[r.at] = &r;

  double sq_sum = 0.0;
  std::size_t count = 0;
  std::size_t suppressed = 0;
  for (const auto& r : raw) {
    const auto it = by_tick.find(r.at);
    if (it == by_tick.end()) {
      ++suppressed;
      continue;
    }
    const auto& rel = *it->second;
    const std::size_t dims = std::min(r.values.size(), rel.values.size());
    for (std::size_t d = 0; d < dims; ++d) {
      const double diff = r.values[d] - rel.values[d];
      sq_sum += diff * diff;
      ++count;
    }
  }
  if (count == 0) return 0.0;
  const double rmse = std::sqrt(sq_sum / static_cast<double>(count));
  const double base = 1.0 / (1.0 + rmse);
  // Suppressed slots scale utility down proportionally.
  const double kept = static_cast<double>(raw.size() - suppressed) /
                      static_cast<double>(raw.size());
  return base * kept;
}

}  // namespace mv::privacy
