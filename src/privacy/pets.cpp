#include "privacy/pets.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace mv::privacy {

std::string LaplaceNoise::name() const {
  return "laplace(eps=" + std::to_string(epsilon_) + ")";
}

std::optional<SensorReading> LaplaceNoise::apply(SensorReading reading,
                                                 Rng& rng) const {
  const double scale = sensitivity_ / epsilon_;
  for (auto& v : reading.values) v += rng.laplace(scale);
  return reading;
}

std::string GaussianNoise::name() const {
  return "gauss(sigma=" + std::to_string(sigma_) + ")";
}

std::optional<SensorReading> GaussianNoise::apply(SensorReading reading,
                                                  Rng& rng) const {
  for (auto& v : reading.values) v += rng.normal(0.0, sigma_);
  return reading;
}

std::string Subsample::name() const {
  return "subsample(1/" + std::to_string(keep_one_in_) + ")";
}

std::optional<SensorReading> Subsample::apply(SensorReading reading, Rng&) const {
  if (keep_one_in_ <= 1) return reading;
  if (counter_++ % keep_one_in_ != 0) return std::nullopt;
  return reading;
}

std::string SpatialGeneralize::name() const {
  return "generalize(cell=" + std::to_string(cell_) + ")";
}

std::optional<SensorReading> SpatialGeneralize::apply(SensorReading reading,
                                                      Rng&) const {
  if (cell_ <= 0.0) return reading;
  for (auto& v : reading.values) {
    v = (std::floor(v / cell_) + 0.5) * cell_;  // cell centre
  }
  return reading;
}

std::string BystanderRedaction::name() const { return "bystander_redaction"; }

std::optional<SensorReading> BystanderRedaction::apply(SensorReading reading,
                                                       Rng&) const {
  if (reading.type != SensorType::kSpatialMap || reading.values.size() < 3) {
    return reading;
  }
  // Cluster points on a coarse XY grid; any cell holding an anomalously dense
  // share of person-height points (0.2..1.9m) is treated as a bystander and
  // dropped. Room structure (walls, floor-to-ceiling spread) survives.
  const double cell = 0.5;
  std::map<std::pair<int, int>, std::size_t> density;
  const std::size_t points = reading.values.size() / 3;
  for (std::size_t i = 0; i < points; ++i) {
    const double x = reading.values[i * 3];
    const double y = reading.values[i * 3 + 1];
    const double z = reading.values[i * 3 + 2];
    if (z < 0.2 || z > 1.9) continue;
    ++density[{static_cast<int>(x / cell), static_cast<int>(y / cell)}];
  }
  // Judge each point by its 3x3-cell neighborhood so clusters that straddle
  // cell boundaries are still caught; the threshold is set above the expected
  // density of diffuse room geometry in a 1.5m x 1.5m patch.
  const std::size_t threshold = std::max<std::size_t>(6, points / 8);
  const auto neighborhood = [&](int cx, int cy) {
    std::size_t total = 0;
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        const auto it = density.find({cx + dx, cy + dy});
        if (it != density.end()) total += it->second;
      }
    }
    return total;
  };
  std::vector<double> kept;
  kept.reserve(reading.values.size());
  for (std::size_t i = 0; i < points; ++i) {
    const double x = reading.values[i * 3];
    const double y = reading.values[i * 3 + 1];
    const double z = reading.values[i * 3 + 2];
    const bool person_like =
        z >= 0.2 && z <= 1.9 &&
        neighborhood(static_cast<int>(x / cell), static_cast<int>(y / cell)) >=
            threshold;
    if (!person_like) {
      kept.push_back(x);
      kept.push_back(y);
      kept.push_back(z);
    }
  }
  reading.values = std::move(kept);
  return reading;
}

std::string VoiceMask::name() const {
  return "voice_mask(shift=" + std::to_string(pitch_shift_) + ")";
}

std::optional<SensorReading> VoiceMask::apply(SensorReading reading,
                                              Rng& rng) const {
  if (reading.type != SensorType::kMicrophone || reading.values.size() < 2) {
    return reading;
  }
  reading.values[0] += pitch_shift_;
  reading.values[1] += rng.normal(0.0, formant_blur_);
  return reading;
}

std::string MicroAggregate::name() const {
  return "microagg(k=" + std::to_string(k_) + ")";
}

std::optional<SensorReading> MicroAggregate::apply(SensorReading reading,
                                                   Rng&) const {
  if (k_ <= 1) return reading;
  buffer_.push_back(std::move(reading));
  if (buffer_.size() < k_) return std::nullopt;
  // Release the element-wise mean of the cohort, stamped with the latest
  // metadata; individual readings are discarded.
  SensorReading out = buffer_.back();
  const std::size_t dims = out.values.size();
  std::vector<double> mean(dims, 0.0);
  std::size_t contributors = 0;
  for (const auto& r : buffer_) {
    if (r.values.size() != dims) continue;
    for (std::size_t d = 0; d < dims; ++d) mean[d] += r.values[d];
    ++contributors;
  }
  if (contributors > 0) {
    for (auto& v : mean) v /= static_cast<double>(contributors);
  }
  out.values = std::move(mean);
  buffer_.clear();
  return out;
}

std::string ClampRange::name() const {
  return "clamp(" + std::to_string(lo_) + "," + std::to_string(hi_) + ")";
}

std::optional<SensorReading> ClampRange::apply(SensorReading reading, Rng&) const {
  for (auto& v : reading.values) v = std::clamp(v, lo_, hi_);
  return reading;
}

}  // namespace mv::privacy
