#include "privacy/pipeline.h"

namespace mv::privacy {

void PrivacyPipeline::set_policy(SensorType type, ChannelPolicy policy) {
  policies_[type] = std::move(policy);
}

const ChannelPolicy* PrivacyPipeline::policy(SensorType type) const {
  const auto it = policies_.find(type);
  return it == policies_.end() ? nullptr : &it->second;
}

void PrivacyPipeline::set_switch(SensorType type, bool on) {
  policies_[type].switched_on = on;
}

void PrivacyPipeline::set_consent(SensorType type, bool consent) {
  policies_[type].consent_given = consent;
}

std::optional<SensorReading> PrivacyPipeline::process(const SensorReading& raw) {
  ++stats_.raw_in;
  const auto it = policies_.find(raw.type);
  // No policy = nothing leaves the sensor (privacy by default).
  if (it == policies_.end()) {
    ++stats_.blocked_switch;
    return std::nullopt;
  }
  const ChannelPolicy& policy = it->second;
  if (!policy.switched_on) {
    ++stats_.blocked_switch;
    return std::nullopt;
  }
  if (policy.local_allowed && local_sink_) {
    // On-device processing sees the raw stream (FPF: process on the user's
    // side); it never crosses the trust boundary.
    local_sink_(raw);
    ++stats_.released_local;
  }
  if (!policy.consent_given) {
    ++stats_.blocked_consent;
    return std::nullopt;
  }
  // DP composition: a release costs the summed epsilon of the chain; an
  // exhausted budget blocks the channel until the next epoch.
  double chain_cost = 0.0;
  for (const auto& pet : policy.transforms) chain_cost += pet->epsilon_cost();
  double& spent = epsilon_spent_[raw.type];
  if (spent + chain_cost > policy.epsilon_budget) {
    ++stats_.blocked_budget;
    return std::nullopt;
  }
  SensorReading out = raw;
  for (const auto& pet : policy.transforms) {
    auto transformed = pet->apply(std::move(out), rng_);
    if (!transformed.has_value()) {
      ++stats_.suppressed_by_pet;
      return std::nullopt;
    }
    out = std::move(*transformed);
  }
  spent += chain_cost;
  ++stats_.released_cloud;
  last_cloud_release_ = out.at;
  if (cloud_sink_) cloud_sink_(out);
  if (audit_hook_) {
    audit_hook_(out, pet_chain_description(raw.type), policy.purpose);
  }
  return out;
}

double PrivacyPipeline::epsilon_spent(SensorType type) const {
  const auto it = epsilon_spent_.find(type);
  return it == epsilon_spent_.end() ? 0.0 : it->second;
}

bool PrivacyPipeline::indicator_on(Tick now) const {
  return now - last_cloud_release_ <= indicator_hold;
}

std::string PrivacyPipeline::pet_chain_description(SensorType type) const {
  const auto it = policies_.find(type);
  if (it == policies_.end() || it->second.transforms.empty()) return "none";
  std::string out;
  for (const auto& pet : it->second.transforms) {
    if (!out.empty()) out += "+";
    out += pet->name();
  }
  return out;
}

ChannelPolicy recommended_policy(SensorType type) {
  ChannelPolicy policy;
  policy.purpose = std::string("default:") + to_string(type);
  switch (default_sensitivity(type)) {
    case Sensitivity::kCritical:
      policy.consent_given = false;
      policy.transforms = {std::make_shared<LaplaceNoise>(1.0, 0.5),
                           std::make_shared<Subsample>(4)};
      break;
    case Sensitivity::kHigh:
      policy.consent_given = false;
      policy.transforms = {std::make_shared<GaussianNoise>(0.1)};
      if (type == SensorType::kSpatialMap) {
        policy.transforms = {std::make_shared<BystanderRedaction>(),
                             std::make_shared<SpatialGeneralize>(0.25)};
      }
      break;
    case Sensitivity::kMedium:
    case Sensitivity::kLow:
      policy.consent_given = true;
      break;
  }
  return policy;
}

}  // namespace mv::privacy
