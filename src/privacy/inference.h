// Inference attackers and utility metrics (§II-A threat model, bench E1).
//
// The adversary observes the readings a user's pipeline released to the cloud
// and tries to recover latent traits:
//  - PreferenceInference: "gaze data can give away users' sexual preferences"
//    [3] — nearest-centroid classification of the mean dwell point.
//  - GaitIdentification: head-bob (frequency, amplitude) matched against an
//    enrolled population — re-identification attack.
// Utility is what the legitimate application loses to the PETs: RMSE between
// raw and released values, mapped to [0, 1].
#pragma once

#include <vector>

#include "privacy/sensors.h"

namespace mv::privacy {

/// Nearest preference-class centroid of the mean released gaze point.
/// Returns the attacked class in [0, kPreferenceClasses).
[[nodiscard]] int infer_preference(const std::vector<SensorReading>& released);

/// Population re-identification: match each probe (mean head-pose features of
/// one user's session) against enrolled trait profiles; returns top-1
/// accuracy in [0,1].
struct GaitProfile {
  std::uint64_t subject = 0;
  double frequency = 0.0;
  double amplitude = 0.0;
};

[[nodiscard]] GaitProfile summarize_gait(std::uint64_t subject,
                                         const std::vector<SensorReading>& released);

[[nodiscard]] std::uint64_t identify_gait(const GaitProfile& probe,
                                          const std::vector<GaitProfile>& enrolled);

/// Health inference from heart rate (§II-A: "biometrical information such as
/// gaze, gait, heart rate shows important aspects of users' psyche").
/// Recovers an estimate of the resting heart rate from released readings —
/// the sensor adds only non-negative arousal drift, so the session minimum
/// is a (biased-up) estimator — and screens for elevated resting HR.
[[nodiscard]] double infer_resting_hr(const std::vector<SensorReading>& released);
[[nodiscard]] bool screen_elevated_hr(const std::vector<SensorReading>& released,
                                      double threshold = 80.0);

/// Voiceprint re-identification: mean (pitch, formant) of a session matched
/// against enrolled profiles — the microphone analogue of gait re-id.
struct VoiceProfile {
  std::uint64_t subject = 0;
  double pitch = 0.0;
  double formant = 0.0;
};

[[nodiscard]] VoiceProfile summarize_voice(std::uint64_t subject,
                                           const std::vector<SensorReading>& released);

[[nodiscard]] std::uint64_t identify_voice(const VoiceProfile& probe,
                                           const std::vector<VoiceProfile>& enrolled);

/// Fraction of spatial-map points that fall inside the bystander cluster
/// around (bx, by) — how much of the person the released scan still shows.
[[nodiscard]] double bystander_exposure(const SensorReading& released, double bx,
                                        double by, double radius = 0.6);

/// Application utility of a released stream vs the raw one: 1 / (1 + RMSE).
/// Readings are matched by timestamp; suppressed readings count as full loss
/// for their slot.
[[nodiscard]] double stream_utility(const std::vector<SensorReading>& raw,
                                    const std::vector<SensorReading>& released);

}  // namespace mv::privacy
