#include "reputation/reputation.h"

#include <algorithm>
#include <cmath>

namespace mv::reputation {

ReputationSystem::ReputationSystem(ReputationConfig config) : config_(config) {}

Status ReputationSystem::register_account(AccountId id, Tick now, double stake) {
  if (!id.valid()) {
    return Status::fail("rep.invalid_account", "invalid account id");
  }
  const auto [it, inserted] =
      accounts_.emplace(id, Account{config_.initial_score, stake, now});
  (void)it;
  if (!inserted) {
    return Status::fail("rep.duplicate_account", "already registered");
  }
  return {};
}

Status ReputationSystem::check_pair(AccountId from, AccountId to, Tick now) {
  if (from == to) {
    return Status::fail("rep.self_action", "cannot endorse/report yourself");
  }
  if (!accounts_.contains(from) || !accounts_.contains(to)) {
    return Status::fail("rep.unknown_account", "both parties must be registered");
  }
  const auto key = std::make_pair(from, to);
  const auto it = last_pair_action_.find(key);
  if (it != last_pair_action_.end() && now - it->second < config_.pair_cooldown) {
    return Status::fail("rep.pair_cooldown", "same-pair action too soon");
  }
  last_pair_action_[key] = now;
  return {};
}

Status ReputationSystem::endorse(AccountId from, AccountId to, Tick now) {
  if (auto s = check_pair(from, to, now); !s.ok()) return s;
  const double gain = config_.endorsement_gain * credibility(from, now);
  auto& target = accounts_.at(to);
  target.score = std::min(config_.max_score, target.score + gain);
  emit(EventKind::kEndorse, from, to, gain, now);
  return {};
}

Status ReputationSystem::report(AccountId from, AccountId to, double severity,
                                Tick now) {
  if (severity <= 0.0 || severity > 1.0) {
    return Status::fail("rep.bad_severity", "severity must be in (0, 1]");
  }
  if (auto s = check_pair(from, to, now); !s.ok()) return s;
  const double penalty =
      config_.report_penalty * credibility(from, now) * severity;
  auto& target = accounts_.at(to);
  target.score = std::max(0.0, target.score - penalty);
  emit(EventKind::kReport, from, to, -penalty, now);
  return {};
}

double ReputationSystem::score(AccountId id) const {
  const auto it = accounts_.find(id);
  return it == accounts_.end() ? 0.0 : it->second.score;
}

double ReputationSystem::credibility(AccountId id, Tick now) const {
  const auto it = accounts_.find(id);
  if (it == accounts_.end()) return 0.0;
  const Account& a = it->second;
  double credibility = 1.0;
  if (config_.use_score_factor) {
    credibility *= a.score / (a.score + config_.initial_score * 4.0);
  }
  if (config_.use_age_factor) {
    const double age = static_cast<double>(std::max<Tick>(0, now - a.created));
    credibility *= std::min(1.0, age / static_cast<double>(config_.age_ramp));
  }
  if (config_.use_stake_factor) {
    // Floor > 0 so stakeless elders still count a little.
    credibility *= (a.stake + 0.1 * config_.stake_half_score) /
                   (a.stake + config_.stake_half_score);
  }
  return credibility;
}

void ReputationSystem::decay_epoch() {
  for (auto& [id, account] : accounts_) {
    account.score += config_.decay_rate * (config_.initial_score - account.score);
  }
}

void ReputationSystem::add_stake(AccountId id, double stake) {
  const auto it = accounts_.find(id);
  if (it != accounts_.end()) it->second.stake += stake;
}

std::vector<std::pair<AccountId, double>> ReputationSystem::leaderboard(
    std::size_t top_n) const {
  std::vector<std::pair<AccountId, double>> all;
  all.reserve(accounts_.size());
  for (const auto& [id, account] : accounts_) all.emplace_back(id, account.score);
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (all.size() > top_n) all.resize(top_n);
  return all;
}

void ReputationSystem::emit(EventKind kind, AccountId from, AccountId to,
                            double delta, Tick now) {
  if (sink_) sink_(ReputationEvent{kind, from, to, delta, now});
}

}  // namespace mv::reputation
