// Reputation system (§IV-B Trust, §IV-C Human Effort).
//
// "The metaverse will include a reputation-based system that will be
// inherently attached to users... This reputation system will allow users to
// report malicious users' misbehaviour and malpractice while voting."
//
// Scores move through endorsements (peer approval) and reports (peer
// sanction); both are weighted by the *credibility* of the acting account —
// a function of score, account age, and stake — which is what blunts Sybil
// and collusion attacks (fresh, unstaked accounts barely move anyone).
// Every mutation can be mirrored to an external sink (the ledger) so the
// record is transparent and tamper-evident.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"

namespace mv::reputation {

struct ReputationConfig {
  double initial_score = 1.0;
  double max_score = 100.0;
  double endorsement_gain = 1.0;   ///< scaled by endorser credibility
  double report_penalty = 3.0;     ///< scaled by reporter credibility
  double decay_rate = 0.02;        ///< per-epoch pull toward initial_score
  Tick age_ramp = 500;             ///< ticks until age factor saturates
  double stake_half_score = 50.0;  ///< stake giving 0.5 stake factor
  Tick pair_cooldown = 100;        ///< min ticks between same-pair actions
  /// Ablation switches (bench A1): disable individual credibility factors to
  /// measure what each contributes to Sybil/collusion resistance.
  bool use_score_factor = true;
  bool use_age_factor = true;
  bool use_stake_factor = true;
};

enum class EventKind : std::uint8_t { kEndorse, kReport };

struct ReputationEvent {
  EventKind kind;
  AccountId from;
  AccountId to;
  double applied_delta = 0.0;
  Tick at = 0;
};

class ReputationSystem {
 public:
  using EventSink = std::function<void(const ReputationEvent&)>;

  explicit ReputationSystem(ReputationConfig config = {});

  /// Mirror every applied event (to the ledger, a log, ...).
  void set_event_sink(EventSink sink) { sink_ = std::move(sink); }

  [[nodiscard]] Status register_account(AccountId id, Tick now, double stake = 0.0);
  [[nodiscard]] bool known(AccountId id) const { return accounts_.contains(id); }
  [[nodiscard]] std::size_t account_count() const { return accounts_.size(); }

  /// Peer endorsement: raises the target's score by gain x endorser
  /// credibility. Self-endorsement and rapid same-pair repeats are rejected.
  [[nodiscard]] Status endorse(AccountId from, AccountId to, Tick now);

  /// Misbehaviour report: lowers the target by penalty x reporter
  /// credibility x severity (severity in (0, 1]).
  [[nodiscard]] Status report(AccountId from, AccountId to, double severity, Tick now);

  /// Score (absolute) and credibility (normalized [0,1], age/stake adjusted).
  [[nodiscard]] double score(AccountId id) const;
  [[nodiscard]] double credibility(AccountId id, Tick now) const;

  /// Epoch decay: scores relax toward the initial baseline.
  void decay_epoch();

  void add_stake(AccountId id, double stake);

  /// Accounts ordered by descending score.
  [[nodiscard]] std::vector<std::pair<AccountId, double>> leaderboard(
      std::size_t top_n) const;

 private:
  struct Account {
    double score = 1.0;
    double stake = 0.0;
    Tick created = 0;
  };

  [[nodiscard]] Status check_pair(AccountId from, AccountId to, Tick now);
  void emit(EventKind kind, AccountId from, AccountId to, double delta, Tick now);

  ReputationConfig config_;
  std::map<AccountId, Account> accounts_;
  std::map<std::pair<AccountId, AccountId>, Tick> last_pair_action_;
  EventSink sink_;
};

}  // namespace mv::reputation
