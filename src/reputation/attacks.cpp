#include "reputation/attacks.h"

namespace mv::reputation {

AttackOutcome run_sybil_inflation(ReputationSystem& system, AccountId target,
                                  std::size_t sybil_count,
                                  std::uint64_t next_id, Tick now) {
  AttackOutcome outcome;
  outcome.target_score_before = system.score(target);
  for (std::size_t i = 0; i < sybil_count; ++i) {
    const AccountId sybil(next_id + i);
    (void)system.register_account(sybil, now, /*stake=*/0.0);
    (void)system.endorse(sybil, target, now);
  }
  outcome.target_score_after = system.score(target);
  return outcome;
}

AttackOutcome run_collusion_ring(ReputationSystem& system,
                                 const std::vector<AccountId>& ring,
                                 std::size_t rounds, Tick start,
                                 Tick cooldown) {
  AttackOutcome outcome;
  double before = 0.0;
  for (const AccountId id : ring) before += system.score(id);
  outcome.target_score_before = ring.empty() ? 0.0 : before / static_cast<double>(ring.size());

  Tick now = start;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < ring.size(); ++i) {
      (void)system.endorse(ring[i], ring[(i + 1) % ring.size()], now);
    }
    now += cooldown;
  }

  double after = 0.0;
  for (const AccountId id : ring) after += system.score(id);
  outcome.target_score_after = ring.empty() ? 0.0 : after / static_cast<double>(ring.size());
  return outcome;
}

}  // namespace mv::reputation
