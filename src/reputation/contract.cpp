#include "reputation/contract.h"

#include <algorithm>

namespace mv::reputation {

namespace {

std::string score_key(std::uint64_t addr) {
  return "score/" + std::to_string(addr);
}
std::string last_key(std::uint64_t rater, std::uint64_t subject) {
  return "last/" + std::to_string(rater) + "/" + std::to_string(subject);
}

Bytes enc_i64(std::int64_t v) {
  ByteWriter w;
  w.i64(v);
  return w.take();
}

std::int64_t dec_i64(const Bytes* b, std::int64_t fallback = 0) {
  if (b == nullptr) return fallback;
  ByteReader r(*b);
  auto v = r.i64();
  return v.ok() ? v.value() : fallback;
}

}  // namespace

Status ReputationContract::call(ledger::CallContext& ctx,
                                const std::string& method,
                                const Bytes& args) const {
  if (method == "rate") return do_rate(ctx, args);
  return Status::fail(errc::kRepUnknownMethod, method);
}

Status ReputationContract::do_rate(ledger::CallContext& ctx,
                                   const Bytes& args) const {
  ByteReader r(args);
  auto subject = r.u64();
  auto delta = r.i64();
  if (!subject.ok() || !delta.ok() || subject.value() == 0 ||
      delta.value() == 0) {
    return Status::fail(errc::kRepBadArgs, "rate(subject: address, delta: i64)");
  }
  if (subject.value() == ctx.caller().value) {
    return Status::fail(errc::kRepSelfRating, "cannot rate yourself");
  }
  const std::int64_t d = delta.value();
  if (d > config_.max_abs_delta || d < -config_.max_abs_delta) {
    return Status::fail(errc::kRepDeltaTooLarge,
                        "|delta| above " + std::to_string(config_.max_abs_delta));
  }
  if (config_.cooldown_blocks > 0) {
    const std::string lk = last_key(ctx.caller().value, subject.value());
    if (const Bytes* last = ctx.get(lk); last != nullptr) {
      const std::int64_t since = ctx.height() - dec_i64(last);
      if (since < config_.cooldown_blocks) {
        return Status::fail(errc::kRepCooldown,
                            "pair rated " + std::to_string(since) + " blocks ago");
      }
    }
    ctx.put(lk, enc_i64(ctx.height()));
  }
  const std::string sk = score_key(subject.value());
  const std::int64_t updated = std::clamp(dec_i64(ctx.get(sk)) + d,
                                          config_.min_score, config_.max_score);
  ctx.put(sk, enc_i64(updated));
  return {};
}

std::int64_t ReputationContract::score(const ledger::LedgerState& state,
                                       const std::string& contract,
                                       crypto::Address subject) {
  const auto* store = state.find_store(contract);
  if (store == nullptr) return 0;
  const auto it = store->find(score_key(subject.value));
  return it == store->end() ? 0 : dec_i64(&it->second);
}

std::uint64_t ReputationContract::rated_count(const ledger::LedgerState& state,
                                              const std::string& contract) {
  return state.store_keys_with_prefix(contract, "score/").size();
}

Bytes ReputationContract::encode_rate(crypto::Address subject,
                                      std::int64_t delta) {
  ByteWriter w;
  w.u64(subject.value);
  w.i64(delta);
  return w.take();
}

}  // namespace mv::reputation
