// Reputation attack models.
//
// The paper claims a Blockchain-backed reputation system can "counterbalance
// attacks during decision-making processes". These simulations generate the
// two canonical attacks so tests and benches can measure how much score an
// adversary can manufacture:
//  - Sybil inflation: spawn k fresh accounts that all endorse one target;
//  - collusion ring: k established accounts endorse each other round-robin.
#pragma once

#include "common/rng.h"
#include "reputation/reputation.h"

namespace mv::reputation {

struct AttackOutcome {
  double target_score_before = 0.0;
  double target_score_after = 0.0;

  [[nodiscard]] double inflation() const {
    return target_score_after - target_score_before;
  }
};

/// Spawn `sybil_count` brand-new zero-stake accounts at `now` and have each
/// endorse `target` once. Ids are allocated from `next_id` upward.
AttackOutcome run_sybil_inflation(ReputationSystem& system, AccountId target,
                                  std::size_t sybil_count,
                                  std::uint64_t next_id, Tick now);

/// `ring` accounts (must already exist) endorse each other pairwise over
/// `rounds` epochs spaced by the pair cooldown. Returns the mean inflation
/// across ring members.
AttackOutcome run_collusion_ring(ReputationSystem& system,
                                 const std::vector<AccountId>& ring,
                                 std::size_t rounds, Tick start,
                                 Tick cooldown);

}  // namespace mv::reputation
