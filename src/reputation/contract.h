// ReputationContract: peer ratings as on-ledger state (§IV-A/B Trust).
//
// The off-chain ReputationSystem (reputation/reputation.h) models endorsement
// dynamics; this contract is the *replicated* counterpart the paper's trust
// story needs — a rating is a signed transaction, so scores are auditable and
// identical on every replica, and the macro-workload harness can drive
// reputation churn as real ledger traffic.
//
// Methods (args ByteWriter-encoded):
//   rate(subject: u64-address, delta: i64)  — adjust subject's score
//
// Rules: you cannot rate yourself, one rating moves a score by at most
// `max_abs_delta`, a (rater, subject) pair must wait `cooldown_blocks`
// between ratings (the anti-ballot-stuffing knob), and scores saturate at
// [min_score, max_score] — the bound the scenario invariant checker audits
// after every replayed block.
#pragma once

#include <string>

#include "ledger/state.h"

namespace mv::reputation {

struct ReputationContractConfig {
  std::string name = "reputation";
  std::int64_t min_score = -100;
  std::int64_t max_score = 100;
  std::int64_t max_abs_delta = 5;
  /// Blocks a (rater, subject) pair must wait between ratings. 0 = none.
  std::int64_t cooldown_blocks = 2;
};

class ReputationContract final : public ledger::Contract {
 public:
  explicit ReputationContract(ReputationContractConfig config = {})
      : config_(std::move(config)) {}

  [[nodiscard]] std::string name() const override { return config_.name; }
  [[nodiscard]] Status call(ledger::CallContext& ctx, const std::string& method,
                            const Bytes& args) const override;

  [[nodiscard]] const ReputationContractConfig& config() const { return config_; }

  // ---- read-side helpers (inspect a committed state) ----
  /// Subject's score (0 when never rated).
  [[nodiscard]] static std::int64_t score(const ledger::LedgerState& state,
                                          const std::string& contract,
                                          crypto::Address subject);
  /// Number of subjects with a score entry.
  [[nodiscard]] static std::uint64_t rated_count(const ledger::LedgerState& state,
                                                 const std::string& contract);

  // ---- argument encoder ----
  [[nodiscard]] static Bytes encode_rate(crypto::Address subject,
                                         std::int64_t delta);

 private:
  Status do_rate(ledger::CallContext& ctx, const Bytes& args) const;

  ReputationContractConfig config_;
};

}  // namespace mv::reputation
