// Quickstart: assemble a metaverse platform, register users, and exercise one
// flow from every pillar of the paper — privacy (sensor pipeline + on-ledger
// audit), governance (a DAO vote that swaps a regulation module), and ethics
// (the Ethical-Hierarchy audit).
//
//   ./quickstart
#include <iostream>

#include "core/metaverse.h"
#include "privacy/sensors.h"

int main() {
  using namespace mv;

  core::MetaverseConfig config;
  config.seed = 2022;
  config.validators = 4;
  config.moderation.mode = moderation::StaffingMode::kAiAssisted;
  core::Metaverse metaverse(config);

  std::cout << "== metaverse-kit quickstart ==\n\n";

  // 1. Register a handful of users across two jurisdictions.
  std::vector<core::UserHandle> users;
  for (int i = 0; i < 6; ++i) {
    users.push_back(metaverse.register_user(i < 3 ? "eu" : "california"));
  }
  metaverse.run_consensus_round();  // genesis grants commit
  std::cout << users.size() << " users registered; chain height "
            << metaverse.chain().height() << ", balance of user 1: "
            << metaverse.chain().state().balance(users[0].address) << "\n";

  // 2. Privacy: stream gaze data through user 1's pipeline. The recommended
  //    policy consent-gates the cloud; grant consent and watch PETs + audit.
  privacy::SensorSim sensors{Rng(1)};
  const auto traits = sensors.sample_traits();
  metaverse.pipeline(users[0].user_id).set_consent(privacy::SensorType::kGaze, true);
  std::size_t released = 0;
  for (int t = 0; t < 40; ++t) {
    released += metaverse
                    .ingest(users[0].user_id,
                            sensors.gaze(users[0].user_id, traits, t))
                    .has_value();
  }
  metaverse.run_consensus_round();
  ledger::AuditQuery audit(metaverse.chain());
  std::cout << "\nuser 1 released " << released << "/40 gaze samples to the cloud"
            << " (PET chain: "
            << metaverse.pipeline(users[0].user_id)
                   .pet_chain_description(privacy::SensorType::kGaze)
            << ")\n"
            << "on-ledger audit records for user 1: "
            << audit.by_subject(users[0].user_id).size() << "\n";

  // 3. Governance: the EU users propose adopting the GDPR module for "eu".
  auto proposal = metaverse.propose_policy_swap(users[0].user_id, "eu",
                                                policy::make_gdpr_module());
  for (const auto& u : users) {
    (void)metaverse.governance().cast_vote(proposal.value(), u.account,
                                           dao::VoteChoice::kYes,
                                           metaverse.clock().now());
  }
  for (int t = 0; t < 110; ++t) metaverse.tick();
  auto outcome = metaverse.finalize_governance(proposal.value());
  std::cout << "\npolicy-swap proposal "
            << (outcome.value().status == dao::ProposalStatus::kPassed
                    ? "PASSED"
                    : "rejected")
            << "; region 'eu' now audited under '"
            << metaverse.policy().region_module("eu")->name() << "'\n";

  // 4. Ethics audit (Fig. 3 / Ethical Hierarchy of Needs).
  const core::EthicsReport report = metaverse.ethics_audit();
  std::cout << "\nethical hierarchy audit:\n";
  for (const auto layer :
       {core::EthicalLayer::kHumanRights, core::EthicalLayer::kHumanEffort,
        core::EthicalLayer::kHumanExperience}) {
    std::cout << "  " << core::to_string(layer) << ": "
              << static_cast<int>(100 * report.layer_score(layer)) << "%";
    for (const auto& miss : report.missing(layer)) std::cout << "  [missing: " << miss << "]";
    std::cout << "\n";
  }
  std::cout << "  overall: " << static_cast<int>(100 * report.overall_score())
            << "%\n";
  return 0;
}
