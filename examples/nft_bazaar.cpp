// NFT bazaar: the §IV-A creator economy.
//
// Part 1 runs the real thing on the ledger: an artist mints, lists, and sells
// a royalty-bearing NFT through the BFT committee. Part 2 runs the admission-
// policy market simulation and prints the paper's qualitative table: open
// markets leak scams, invite-only kills inclusion, reputation gating keeps
// both in check.
//
//   ./nft_bazaar
#include <iomanip>
#include <iostream>

#include "core/metaverse.h"

int main() {
  using namespace mv;

  std::cout << "== nft bazaar ==\n\n-- part 1: on-chain royalty sale --\n";

  core::MetaverseConfig config;
  config.seed = 1337;
  core::Metaverse metaverse(config);
  const auto artist = metaverse.register_user("eu");
  const auto gallery = metaverse.register_user("eu");
  const auto collector = metaverse.register_user("eu");
  metaverse.run_consensus_round();

  Rng rng(4);
  auto call = [&](const core::UserHandle& who, const std::string& method,
                  Bytes args) {
    const auto& wallet = metaverse.wallet(who.user_id);
    metaverse.submit_tx(ledger::make_contract_call(
        wallet, metaverse.chain().state().nonce(wallet.address()), "nft",
        method, std::move(args), 1, rng));
    metaverse.run_consensus_round();
  };

  call(artist, "mint", nft::NftContract::encode_mint("mv://drop/genesis-hat", 1500));
  call(artist, "list", nft::NftContract::encode_list(0, 1000));
  call(gallery, "buy", nft::NftContract::encode_token(0));
  call(gallery, "list", nft::NftContract::encode_list(0, 4000));
  call(collector, "buy", nft::NftContract::encode_token(0));

  const auto token = nft::NftContract::token(metaverse.chain().state(), 0).value();
  std::cout << "token 0 '" << token.uri << "' owner: "
            << (token.owner == collector.address ? "collector" : "?")
            << ", royalty " << token.royalty_bps / 100.0 << "%\n";
  const auto grant = metaverse.config().genesis_grant;
  std::cout << "artist balance: " << metaverse.chain().state().balance(artist.address)
            << " (start " << grant << ", sale 1000, resale royalty 600, fees -2)\n"
            << "gallery balance: " << metaverse.chain().state().balance(gallery.address)
            << " (bought 1000, resold keeping 3400, fees -2)\n";

  std::cout << "\n-- part 2: admission policies (5000 creators, 8% scammers) --\n";
  nft::MarketConfig market;
  market.creators = 5000;
  market.buyers = 8000;
  market.rounds = 20;
  std::cout << std::left << std::setw(20) << "policy" << std::right
            << std::setw(12) << "scam rate" << std::setw(12) << "inclusion"
            << std::setw(12) << "earning" << std::setw(12) << "delisted"
            << "\n";
  for (const auto policy :
       {nft::AdmissionPolicy::kOpen, nft::AdmissionPolicy::kInviteOnly,
        nft::AdmissionPolicy::kReputationGated}) {
    nft::MarketSim sim(market, policy, Rng(7));
    const auto m = sim.run();
    std::cout << std::left << std::setw(20) << nft::to_string(policy)
              << std::right << std::fixed << std::setprecision(3)
              << std::setw(12) << m.scam_sale_rate() << std::setw(12)
              << m.honest_inclusion() << std::setw(12) << m.honest_earning_rate()
              << std::setw(12) << m.scammers_delisted << "\n";
  }
  std::cout << "\nshape: reputation gating ~open inclusion with ~invite-only scam rate.\n";
  return 0;
}
