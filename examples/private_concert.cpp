// Private concert: a mass social event (§IV-B Accessibility: "concerts with
// millions of people") where every attendee streams XR sensor data.
//
// Shows the Figure-2 pipeline at scale: granular switches, consent gates,
// PET chains per sensor, the device LED, and what an inference attacker can
// (and cannot) recover from what actually reached the cloud — plus the
// §II-D "no data monopoly" check over the on-ledger audit log.
//
//   ./private_concert
#include <iomanip>
#include <iostream>

#include "core/metaverse.h"
#include "privacy/inference.h"

int main() {
  using namespace mv;

  core::MetaverseConfig config;
  config.seed = 5150;
  core::Metaverse metaverse(config);

  std::cout << "== private concert ==\n\n";

  constexpr int kAttendees = 60;
  privacy::SensorSim sensors{Rng(3)};
  std::vector<core::UserHandle> crowd;
  std::vector<privacy::UserTraits> traits;
  for (int i = 0; i < kAttendees; ++i) {
    crowd.push_back(metaverse.register_user("eu"));
    traits.push_back(sensors.sample_traits());
  }

  // Two-thirds of the crowd consents to gaze sharing (foveated streaming of
  // the stage); one third leaves the default consent-off policy.
  int consented = 0;
  for (int i = 0; i < kAttendees; ++i) {
    if (i % 3 != 0) {
      metaverse.pipeline(crowd[static_cast<std::size_t>(i)].user_id)
          .set_consent(privacy::SensorType::kGaze, true);
      ++consented;
    }
  }

  // The concert: 60 ticks of gaze streaming, with the stage collecting what
  // the pipelines release.
  std::vector<std::vector<privacy::SensorReading>> cloud_view(kAttendees);
  for (int t = 0; t < 60; ++t) {
    for (int i = 0; i < kAttendees; ++i) {
      auto released = metaverse.ingest(
          crowd[static_cast<std::size_t>(i)].user_id,
          sensors.gaze(crowd[static_cast<std::size_t>(i)].user_id,
                       traits[static_cast<std::size_t>(i)], t));
      if (released.has_value()) {
        cloud_view[static_cast<std::size_t>(i)].push_back(*released);
      }
    }
    metaverse.tick();
  }
  metaverse.run_consensus_round();

  const auto& stats0 = metaverse.pipeline(crowd[1].user_id).stats();
  std::cout << "attendee 2's pipeline: " << stats0.raw_in << " raw readings, "
            << stats0.released_cloud << " released to cloud, "
            << stats0.suppressed_by_pet << " suppressed by PETs\n";
  std::cout << "device LED of attendee 2 (currently): "
            << (metaverse.pipeline(crowd[1].user_id).indicator_on(metaverse.clock().now())
                    ? "ON"
                    : "off")
            << "\n\n";

  // The venue's analyst runs the §II-A inference attack on the cloud view.
  int attacked_ok = 0, had_data = 0;
  for (int i = 0; i < kAttendees; ++i) {
    if (cloud_view[static_cast<std::size_t>(i)].empty()) continue;
    ++had_data;
    attacked_ok += (privacy::infer_preference(cloud_view[static_cast<std::size_t>(i)]) ==
                    traits[static_cast<std::size_t>(i)].preference_class);
  }
  std::cout << "inference attack on released gaze: " << had_data << "/"
            << kAttendees << " attendees had any cloud data; attacker recovered "
            << "the preference class of " << attacked_ok << " ("
            << std::fixed << std::setprecision(1)
            << (had_data ? 100.0 * attacked_ok / had_data : 0.0)
            << "% vs 12.5% chance)\n";

  // Regulator view: the audit log on chain.
  ledger::AuditQuery audit(metaverse.chain());
  std::cout << "\non-ledger audit: " << metaverse.chain().state().audit_log().size()
            << " records, data-concentration HHI "
            << std::setprecision(4) << audit.data_concentration_hhi()
            << " (monopoly? " << (audit.has_data_monopoly() ? "YES" : "no") << ")\n";

  std::cout << "\nconsented attendees: " << consented << "/" << kAttendees
            << "; non-consenting attendees released 0 readings by default.\n";
  return 0;
}
