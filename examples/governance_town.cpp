// Governance town: the paper's introduction scenario, played end to end.
//
// An avatar harasses others in a plaza. The victims use privacy bubbles (the
// immediate, code-level defence), file reports (moderation), the platform
// sanctions the offender's reputation, and the community then answers the
// paper's question — "How will the metaverse regulate misbehaviour?" — by
// voting, in a module committee of a federated DAO, to make bubbles default.
//
//   ./governance_town
#include <iostream>

#include "core/metaverse.h"

int main() {
  using namespace mv;

  core::MetaverseConfig config;
  config.seed = 99;
  config.moderation.mode = moderation::StaffingMode::kHybrid;
  config.moderation.community_size = 200;
  config.moderation.juror_availability = 0.05;
  config.reputation.pair_cooldown = 1;
  core::Metaverse metaverse(config);

  std::cout << "== governance town ==\n\n";

  // Population: 20 citizens + 1 troll, all in the plaza.
  std::vector<core::UserHandle> citizens;
  for (int i = 0; i < 20; ++i) citizens.push_back(metaverse.register_user("town"));
  const core::UserHandle troll = metaverse.register_user("town");

  auto& world = metaverse.world();
  // The troll stalks citizen 0.
  const auto victim = citizens[0];
  world.move(troll.avatar, world.avatar(victim.avatar)->pos + world::Vec2{0.5, 0.0});

  // Phase 1: harassment works while the victim has no bubble.
  int landed = 0;
  for (int t = 0; t < 10; ++t) {
    landed += world
                  .interact(troll.avatar, victim.avatar,
                            world::InteractionKind::kHarass, metaverse.clock().now())
                  .ok();
    metaverse.tick();
  }
  std::cout << "phase 1 (no defences): " << landed << "/10 harassing interactions landed\n";

  // Phase 2: the victim turns on a privacy bubble — code shapes behaviour.
  world.set_bubble(victim.avatar, true, 2.0);
  int landed_bubble = 0;
  for (int t = 0; t < 10; ++t) {
    landed_bubble += world
                         .interact(troll.avatar, victim.avatar,
                                   world::InteractionKind::kHarass,
                                   metaverse.clock().now())
                         .ok();
    metaverse.tick();
  }
  std::cout << "phase 2 (privacy bubble): " << landed_bubble
            << "/10 landed; bubble blocked "
            << world.stats().blocked_by_bubble << "\n";

  // Phase 3: victims report; hybrid moderation (AI triage + community jury)
  // resolves; upheld verdicts sanction the troll's reputation.
  const double before = metaverse.reputation().score(troll.account);
  for (int i = 0; i < 6; ++i) {
    metaverse.report_misbehaviour(citizens[static_cast<std::size_t>(i)].user_id, troll.user_id,
                                  moderation::ReportKind::kHarassment);
  }
  for (int t = 0; t < 30; ++t) metaverse.tick();
  std::cout << "phase 3 (moderation): " << metaverse.moderation().metrics().resolved
            << " reports resolved (by AI: "
            << metaverse.moderation().metrics().resolved_by_ai << ", by jury: "
            << metaverse.moderation().metrics().resolved_by_jury << "); troll reputation "
            << before << " -> " << metaverse.reputation().score(troll.account) << "\n";

  // Phase 4: the safety committee votes to make bubbles opt-out (§III-C
  // modular governance: the concern routes to its committee, not everyone).
  auto& governance = metaverse.governance();
  const ModuleId safety_module = governance.create_module("community-safety");
  for (int i = 0; i < 7; ++i) {
    (void)governance.subscribe(citizens[static_cast<std::size_t>(i)].account, safety_module);
  }
  auto proposal = governance.propose(citizens[0].account, safety_module,
                                     "privacy bubbles default to ON",
                                     metaverse.clock().now());
  for (int i = 0; i < 7; ++i) {
    (void)governance.cast_vote(proposal.value(), citizens[static_cast<std::size_t>(i)].account,
                               i < 6 ? dao::VoteChoice::kYes : dao::VoteChoice::kNo,
                               metaverse.clock().now());
  }
  for (int t = 0; t < 110; ++t) metaverse.tick();
  auto outcome = governance.finalize(proposal.value(), metaverse.clock().now());
  const bool passed = outcome.value().status == dao::ProposalStatus::kPassed;
  std::cout << "phase 4 (governance): committee decision "
            << (passed ? "PASSED" : "rejected") << " with load "
            << governance.avg_requests_per_member()
            << " ballot requests per enrolled member (flat DAO would be 1.0)\n";

  if (passed) {
    for (const auto& c : citizens) world.set_bubble(c.avatar, true, 1.5);
    std::cout << "         bubbles now default-on for all citizens\n";
  }
  return 0;
}
