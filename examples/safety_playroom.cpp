// Safety playroom: co-located VR in a cluttered living room (§II-C).
//
// Four HMD-occluded users share a 10x10m room with furniture. Compares no
// intervention against shadow avatars, potential-field redirected walking,
// and a chaperone grid — collisions per 100 m walked vs immersion disruption.
//
//   ./safety_playroom
#include <iomanip>
#include <iostream>

#include "safety/room.h"

int main() {
  using namespace mv;
  using safety::Intervention;

  std::cout << "== safety playroom ==\n\n"
            << "room 10x10m, 4 users, 6 obstacles, 3000 ticks x 20 seeds\n\n"
            << std::left << std::setw(22) << "intervention" << std::right
            << std::setw(16) << "coll/100m" << std::setw(12) << "user-user"
            << std::setw(12) << "obstacle" << std::setw(10) << "wall"
            << std::setw(14) << "disruption" << "\n";

  for (const auto intervention :
       {Intervention::kNone, Intervention::kShadowAvatars,
        Intervention::kRedirectedWalking, Intervention::kChaperone}) {
    double per100 = 0, uu = 0, ob = 0, wall = 0, disruption = 0;
    const int seeds = 20;
    for (int s = 0; s < seeds; ++s) {
      safety::RoomConfig config;
      config.intervention = intervention;
      safety::RoomSim sim(config, Rng(1000 + s));
      sim.run(3000);
      const auto& m = sim.metrics();
      per100 += m.collisions_per_100m();
      uu += static_cast<double>(m.user_user_collisions);
      ob += static_cast<double>(m.user_obstacle_collisions);
      wall += static_cast<double>(m.wall_hits);
      disruption += m.disruption;
    }
    std::cout << std::left << std::setw(22) << safety::to_string(intervention)
              << std::right << std::fixed << std::setprecision(2)
              << std::setw(16) << per100 / seeds << std::setw(12) << uu / seeds
              << std::setw(12) << ob / seeds << std::setw(10) << wall / seeds
              << std::setw(14) << disruption / seeds << "\n";
  }

  std::cout << "\nshape: every intervention cuts collisions vs occluded walking;\n"
            << "shadow avatars only address user-user bumps (furniture stays\n"
            << "invisible); redirected walking covers everything at a continuous\n"
            << "low-grade disruption; the chaperone trades hard stops for safety.\n";
  return 0;
}
