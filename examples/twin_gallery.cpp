// Twin gallery: cultural preservation via digital twins (§IV-A "Digital
// twins" + §IV-B "Humanity": "the metaverse can be the platform to preserve
// and restore art pieces").
//
// A museum digitizes physical artworks as twins. Physical state drifts
// (ageing, lighting) and occasionally jumps (restoration, relocation). The
// gallery compares sync strategies, anchors every synchronized state on the
// ledger for provenance, and mints an NFT per artwork so ownership and
// authenticity are checkable by anyone.
//
//   ./twin_gallery
#include <iomanip>
#include <iostream>

#include "core/metaverse.h"
#include "twin/twin.h"

int main() {
  using namespace mv;

  std::cout << "== twin gallery ==\n\n";

  core::MetaverseConfig config;
  config.seed = 404;
  core::Metaverse metaverse(config);
  const auto museum = metaverse.register_user("eu");
  metaverse.run_consensus_round();

  // 1. Mint provenance NFTs for 5 artworks.
  Rng rng(405);
  const auto& wallet = metaverse.wallet(museum.user_id);
  for (int art = 0; art < 5; ++art) {
    metaverse.submit_tx(ledger::make_contract_call(
        wallet, metaverse.chain().state().nonce(wallet.address()) , "nft", "mint",
        nft::NftContract::encode_mint("museum://artwork/" + std::to_string(art), 0),
        1, rng));
    metaverse.run_consensus_round();
  }
  std::cout << "minted " << nft::NftContract::token_count(metaverse.chain().state())
            << " provenance NFTs owned by the museum\n\n";

  // 2. Run the twins under each sync strategy; anchor digests on the ledger
  //    through the museum device's audit client.
  std::cout << std::left << std::setw(12) << "strategy" << std::right
            << std::setw(18) << "msgs/twin/tick" << std::setw(16)
            << "avg divergence" << std::setw(14) << "anchored" << "\n";
  for (const auto strategy :
       {twin::SyncStrategy::kPeriodic, twin::SyncStrategy::kThreshold,
        twin::SyncStrategy::kOnEvent}) {
    twin::SyncConfig sync;
    sync.strategy = strategy;
    sync.period = 25;
    sync.delta_threshold = 0.4;
    twin::TwinSim sim(5, 4, sync, Rng(406));
    std::uint64_t anchored = 0;
    sim.set_anchor_hook(
        [&](TwinId, const crypto::Digest&, Tick) { ++anchored; });
    sim.run(500);
    std::cout << std::left << std::setw(12) << twin::to_string(strategy)
              << std::right << std::fixed << std::setprecision(4)
              << std::setw(18) << sim.metrics().message_rate(5, 500)
              << std::setw(16) << sim.metrics().avg_divergence()
              << std::setw(14) << anchored << "\n";
  }

  // 3. Anchors as audit records: file one per artwork on chain.
  {
    twin::SyncConfig sync;
    sync.strategy = twin::SyncStrategy::kThreshold;
    sync.delta_threshold = 0.4;
    twin::TwinSim sim(5, 4, sync, Rng(407));
    ledger::AuditClient device(metaverse.wallet(museum.user_id), rng);
    sim.set_anchor_hook([&](TwinId id, const crypto::Digest& digest, Tick) {
      ledger::AuditRecordBody body;
      body.data_category = "twin_state";
      body.purpose = "provenance:" + crypto::to_hex(digest).substr(0, 12);
      body.subject = id.value();
      body.pet_applied = "none";
      metaverse.submit_tx(device.record(metaverse.chain().state(), std::move(body)));
    });
    sim.run(300);
    metaverse.run_consensus_round();
    ledger::AuditQuery query(metaverse.chain());
    const auto records = query.by_collector(museum.address);
    std::cout << "\n" << records.size()
              << " twin-state digests anchored on chain; first: "
              << (records.empty() ? "-" : records.front().body.purpose) << "\n";
  }

  std::cout << "\nprovenance story: any visitor can verify an artwork's twin\n"
            << "history against the chain — authenticity without trusting the\n"
            << "museum's database (the paper's 'digital ledger' approach).\n";
  return 0;
}
